package exp

import (
	"testing"

	"metachaos/internal/faultsim"
)

// TestElasticGrowBitIdentical is the scale-out tentpole's end-to-end
// assertion: a run that starts on 2 servers and grows to 4 mid-run —
// repairing its cached schedules from the stale donors instead of
// recomputing them collectively — must finish with exactly the
// ResultHash of a fault-free run that had all 4 servers from t=0.
// Checked fault-free and under the pinned "growth" chaos profile's
// message faults, serial and sharded.
func TestElasticGrowBitIdentical(t *testing.T) {
	cfg := ElasticGrowConfig{StartProcs: 2, GrowProcs: 2, Iters: 5, Seed: chaosSeed(t, 11)}
	grown, clean := ElasticGrow(cfg)

	if clean.ResultHash == 0 {
		t.Fatal("full-size reference run produced a zero result hash")
	}
	if grown.ResultHash != clean.ResultHash {
		t.Errorf("grown run's result hash %#x, want full-size %#x (bit-identical)",
			grown.ResultHash, clean.ResultHash)
	}
	if grown.FinalServers != cfg.StartProcs+cfg.GrowProcs {
		t.Errorf("finished with %d servers, want %d", grown.FinalServers, cfg.StartProcs+cfg.GrowProcs)
	}
	if grown.Grows < 1 {
		t.Error("no growth slot observed; joins never fired")
	}
	if len(grown.Joins) != cfg.GrowProcs {
		t.Errorf("join history %+v, want %d joins", grown.Joins, cfg.GrowProcs)
	}
	for _, j := range grown.Joins {
		if j.Rank <= cfg.StartProcs || j.Rank > cfg.StartProcs+cfg.GrowProcs {
			t.Errorf("join hit world rank %d, want a dormant server rank in (%d,%d]",
				j.Rank, cfg.StartProcs, cfg.StartProcs+cfg.GrowProcs)
		}
	}
	// Every growth slot repairs the client's matrix and vector
	// schedules from their stale donors — never a collective rebuild.
	if want := 2 * grown.Grows; grown.Repaired != want {
		t.Errorf("client repaired %d schedules across %d grows, want %d",
			grown.Repaired, grown.Grows, want)
	}
	if grown.Makespan <= clean.Makespan {
		t.Errorf("grown makespan %g not above full-size %g (small start costs throughput)",
			grown.Makespan, clean.Makespan)
	}

	// Same seed, fresh everything: identical outcome.
	grown2 := runElasticGrow(cfg)
	if grown2.ResultHash != grown.ResultHash || grown2.Makespan != grown.Makespan ||
		grown2.Grows != grown.Grows || grown2.Repaired != grown.Repaired {
		t.Errorf("nondeterministic replay: hash %#x vs %#x, makespan %g vs %g, grows %d vs %d, repairs %d vs %d",
			grown2.ResultHash, grown.ResultHash, grown2.Makespan, grown.Makespan,
			grown2.Grows, grown.Grows, grown2.Repaired, grown.Repaired)
	}

	// Sharded scheduler: bit-identical to serial.
	sharded := cfg
	sharded.Shards = 4
	grownN := runElasticGrow(sharded)
	if grownN.ResultHash != grown.ResultHash || grownN.Makespan != grown.Makespan {
		t.Errorf("sharded run diverged: hash %#x vs serial %#x, makespan %g vs %g",
			grownN.ResultHash, grown.ResultHash, grownN.Makespan, grown.Makespan)
	}

	// Under the pinned growth profile's message faults with reliable
	// transport: still bit-identical, serial and sharded.
	faulty := cfg
	faulty.Fault = faultsim.Growth(cfg.Seed)
	grownF := runElasticGrow(faulty)
	if grownF.ResultHash != clean.ResultHash {
		t.Errorf("grown run under growth profile hashed %#x, want %#x (bit-identical)",
			grownF.ResultHash, clean.ResultHash)
	}
	faultyN := faulty
	faultyN.Shards = 4
	grownFN := runElasticGrow(faultyN)
	if grownFN.ResultHash != grownF.ResultHash || grownFN.Makespan != grownF.Makespan {
		t.Errorf("sharded faulty run diverged: hash %#x vs serial %#x, makespan %g vs %g",
			grownFN.ResultHash, grownF.ResultHash, grownFN.Makespan, grownF.Makespan)
	}
}

// TestChaosElasticGrow is the chaos-matrix entry (chaos.sh picks it up
// via -run Chaos): scale-out under seed-driven message faults must
// stay bit-identical to the full-size fault-free run and replay
// deterministically.
func TestChaosElasticGrow(t *testing.T) {
	seed := chaosSeed(t, 13)
	cfg := ElasticGrowConfig{
		StartProcs: 2, GrowProcs: 2, Iters: 5, Seed: seed,
		Fault: faultsim.Growth(seed),
	}
	grown, clean := ElasticGrow(cfg)
	if clean.ResultHash == 0 {
		t.Fatal("full-size reference run produced a zero result hash")
	}
	if grown.ResultHash != clean.ResultHash {
		t.Errorf("result hash %#x under faults, want full-size fault-free %#x (bit-identical)",
			grown.ResultHash, clean.ResultHash)
	}
	if grown.Grows < 1 || grown.Repaired < 2 {
		t.Errorf("grows=%d repaired=%d; the growth profile must exercise the repair path",
			grown.Grows, grown.Repaired)
	}

	grown2 := runElasticGrow(cfg)
	if grown2.ResultHash != grown.ResultHash || grown2.Makespan != grown.Makespan {
		t.Errorf("nondeterministic replay: hash %#x vs %#x, makespan %g vs %g",
			grown2.ResultHash, grown.ResultHash, grown2.Makespan, grown.Makespan)
	}
}

// TestElasticJoinsAlwaysHitDormantServers pins the join-schedule
// derivation: every seed must target only the dormant server world
// ranks (never the client or an initial member) and land inside the
// first two iteration slots, so the run always has iterations left to
// exercise the repaired schedules.
func TestElasticJoinsAlwaysHitDormantServers(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		for _, sp := range []int{1, 2, 8} {
			for _, gp := range []int{1, 2, 4} {
				for g, j := range ElasticJoins(seed, sp, gp) {
					if j.Rank != 1+sp+g {
						t.Fatalf("seed %d start %d: joiner %d got world rank %d, want %d",
							seed, sp, g, j.Rank, 1+sp+g)
					}
					lo, hi := elasticSetup, elasticSetup+2*elasticSlot
					if j.At <= lo || j.At >= hi {
						t.Fatalf("seed %d: join at %g outside (%g,%g)", seed, j.At, lo, hi)
					}
				}
			}
		}
	}
}
