package exp

import (
	"metachaos/internal/core"
	"metachaos/internal/distarray"
	"metachaos/internal/faultsim"
	"metachaos/internal/gidx"
	"metachaos/internal/hpfrt"
	"metachaos/internal/mpsim"
	"metachaos/internal/obs"
	"metachaos/internal/seclib"
)

// The elastic scale-OUT experiment: the Figure-10 client/server
// pairing started on a deliberately small server, with fresh server
// ranks joining the running world mid-computation — the inverse of
// elastic.go's crash-and-shrink.  Joiners start dormant
// (mpsim.Config.Join); when one enters, every participant — incumbent
// and joiner alike — re-derives the coupling over the enlarged group
// and obtains new schedules WITHOUT a collective inspector run:
//
//   - every process computes the transfer's RouteMap locally from the
//     two sides' distribution descriptors (pure arithmetic);
//   - incumbents claim their previous-incarnation schedules from the
//     cache's stale set (AdvanceIncarnation / TakeStale) and Repair
//     them against the new map;
//   - the joiner, which has nothing to repair, assembles its schedule
//     from the same map with NewScheduleFromRoutes.
//
// Both paths specialize the identical route map, so the resulting
// schedules interoperate lane for lane.  The grow slot costs only the
// matrix re-ship (data), never an O(world) schedule collective.
//
// Because the server's MatVec allgathers the operand and reduces each
// row left-to-right, the committed iterates are bit-identical for any
// server size — so a run that starts small and grows must end with
// exactly the ResultHash of a run that had the full server from t=0.
// TestElasticGrowBitIdentical asserts that, fault-free and under the
// pinned "growth" chaos profile, serial and sharded.
//
// Coordination reuses elastic.go's slotted scheme.  Membership is a
// pure function of virtual time (AbsentRanks), so all participants
// reading it at the same slot boundary agree without exchanging a
// message; a joiner's body starts at its join time and aligns to the
// next boundary, where the incumbents notice the absent count dropped
// and everyone rebuilds together.  Unlike a crash, a join never voids
// a slot — nobody the movers were talking to vanished — so an
// attempted iteration always commits at the next boundary.

// ElasticGrowConfig parameterizes one scale-out run.
type ElasticGrowConfig struct {
	// StartProcs is the initial active server size (≥ 1).
	StartProcs int
	// GrowProcs is how many server ranks join mid-run (≥ 1); the
	// simulated world is sized StartProcs+GrowProcs up front and the
	// joiners stay dormant until their seed-derived join times.
	GrowProcs int
	// Iters is the number of power-iteration steps to commit.
	Iters int
	// Seed drives the join schedule (see ElasticJoins).
	Seed uint64
	// Fault, when non-nil, injects message faults (the reliable
	// transport is enabled with it); joins still come from Seed.
	Fault *faultsim.Profile
	// Obs, when non-nil, records spans and metrics on the virtual clock.
	Obs *obs.Tracer
	// Shards pins the simulator's scheduler shard count.
	Shards int
}

// ElasticGrowResult is one scale-out run's outcome.
type ElasticGrowResult struct {
	// ResultHash fingerprints the final operand vector on the client.
	ResultHash uint64
	// FinalServers is the server size the run finished with.
	FinalServers int
	// Grows counts growth slots (boundaries where the membership
	// enlarged; two ranks joining within one slot count once).
	Grows int
	// Repaired counts schedules the client patched from a stale donor
	// across incarnations (2 per growth slot: matrix and vector).
	Repaired int
	// Joins is the run's join history from the simulator.
	Joins []mpsim.JoinRecord
	// Makespan is the run's virtual-time length in seconds.
	Makespan float64
}

// ElasticJoins derives the seed-pinned join schedule: the growProcs
// highest server world ranks, dormant at start, enter the running
// world at seed-derived times inside the first two iteration slots.
func ElasticJoins(seed uint64, startProcs, growProcs int) []faultsim.Join {
	joins := make([]faultsim.Join, growProcs)
	for g := range joins {
		z := seed ^ uint64(g+1)*0xbf58476d1ce4e5b9
		z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
		z = (z ^ z>>27) * 0x94d049bb133111eb
		z ^= z >> 31
		frac := float64(z>>11) / (1 << 53)
		joins[g] = faultsim.Join{
			Rank: 1 + startProcs + g,
			At:   elasticSetup + elasticSlot*(0.1+1.5*frac),
		}
	}
	return joins
}

// ElasticGrow runs the scale-out experiment and its reference: a run
// that starts with StartProcs servers and grows to
// StartProcs+GrowProcs, and a fault-free run with the full server
// from t=0.  The grown run's ResultHash must equal the reference's.
func ElasticGrow(cfg ElasticGrowConfig) (grown ElasticGrowResult, clean ElasticResult) {
	clean = runElastic(ElasticConfig{
		ServerProcs: cfg.StartProcs + cfg.GrowProcs,
		Iters:       cfg.Iters, Seed: cfg.Seed, Shards: cfg.Shards,
	}, nil)
	grown = runElasticGrow(cfg)
	return grown, clean
}

// liveProgramRanks returns the program's world ranks that have joined
// the world by now, in world-rank order — a pure function of virtual
// time, identical on every process reading it at the same boundary.
func liveProgramRanks(p *mpsim.Proc, program string) []int {
	absent := map[int]bool{}
	for _, r := range p.AbsentRanks() {
		absent[r] = true
	}
	var out []int
	for _, r := range p.ProgramRanks(program) {
		if !absent[r] {
			out = append(out, r)
		}
	}
	return out
}

// growRoutes derives a transfer's route map locally from the two
// sides' distribution descriptors — pure arithmetic on every process,
// joiners included.
func growRoutes(ctx *core.Ctx, g *core.Coupling, srcDist, dstDist *distarray.Dist, sec gidx.Section) *core.RouteMap {
	mk := func(d *distarray.Dist) *core.Spec {
		return &core.Spec{
			Lib: hpfrt.Library,
			Obj: seclib.NewView(d, 0, core.Float64),
			Set: core.NewSetOfRegions(sec),
			Ctx: ctx,
		}
	}
	rm, err := core.ComputeRoutes(g, mk(srcDist), mk(dstDist))
	if err != nil {
		panic(err)
	}
	return rm
}

// growResolve obtains a schedule for the new route map without any
// communication: an incumbent's stale entry is claimed as a donor and
// repaired; a process with no donor (the joiner, or anyone's first
// setup) assembles from the map directly.  Repair is applied for any
// delta size here — it reassembles fully from the new map, so it is
// correct regardless; the delta-fraction policy (RepairPolicy) is a
// performance heuristic for callers whose fallback is a collective,
// which the grow path deliberately never takes so that joiners and
// incumbents stay in lockstep without one.
func growResolve(cache *core.ScheduleCache, g *core.Coupling, key string, rm *core.RouteMap, myWorld int, repaired *int) *core.Schedule {
	s, err := cache.Get(key, core.Float64, func() (*core.Schedule, error) {
		if donor := cache.TakeStale(key, core.Float64); donor != nil {
			patched := donor.Clone()
			if err := patched.Repair(donor.Routes().Diff(rm), g.View()); err != nil {
				return nil, err
			}
			patched.Rebind(g.Union)
			if repaired != nil {
				*repaired++
			}
			return patched, nil
		}
		return core.NewScheduleFromRoutes(g, rm, core.Float64, myWorld)
	})
	if err != nil {
		panic(err)
	}
	return s
}

// runElasticGrow executes one scale-out run.
func runElasticGrow(cfg ElasticGrowConfig) ElasticGrowResult {
	if cfg.StartProcs < 1 || cfg.GrowProcs < 1 {
		panic("exp: elastic grow needs at least 1 initial and 1 joining server process")
	}
	if cfg.Iters <= 0 {
		panic("exp: elastic grow needs at least 1 iteration")
	}
	var out ElasticGrowResult
	n := elasticN
	total := cfg.StartProcs + cfg.GrowProcs
	matSec := gidx.FullSection(gidx.Shape{n, n})
	vecSec := gidx.FullSection(gidx.Shape{n})
	boundary := func(slot int) float64 { return elasticSetup + float64(slot)*elasticSlot }
	joins := &faultsim.Profile{Seed: cfg.Seed, Joins: ElasticJoins(cfg.Seed, cfg.StartProcs, cfg.GrowProcs)}
	// A nil *Profile must stay a nil interface, or the net layer would
	// call Decide on a nil receiver.
	var inj mpsim.FaultInjector
	var rel *mpsim.Reliability
	if cfg.Fault != nil {
		inj = cfg.Fault
		rel = &mpsim.Reliability{}
	}

	st := mpsim.Run(mpsim.Config{
		Machine:  mpsim.AlphaFarmATM(),
		Fault:    inj,
		Reliable: rel,
		Join:     joins.JoinPlan(),
		Obs:      cfg.Obs,
		Shards:   cfg.Shards,
		Programs: []mpsim.ProgramSpec{
			{Name: "client", Procs: 1, ProcsPerNode: 1, Body: func(p *mpsim.Proc) {
				ctx := core.NewCtx(p, p.Comm())
				a := hpfrt.NewArray(hpfrt.RowBlockMatrix(n, n, 1), 0)
				x := hpfrt.NewArray(hpfrt.BlockVector(n, 1), 0)
				y := hpfrt.NewArray(hpfrt.BlockVector(n, 1), 0)
				a.FillGlobal(func(c []int) float64 { return float64((c[0]*13+c[1]*7)%17) - 8 })
				x.FillGlobal(func(c []int) float64 { return 1 + float64(c[0]%7)/8 })

				cache := core.NewScheduleCache()
				var coupling *core.Coupling
				var matSched, vecSched *core.Schedule
				setup := func() {
					srv := liveProgramRanks(p, "server")
					var err error
					coupling, err = core.NewCoupling(p, p.ProgramRanks("client"), srv)
					if err != nil {
						panic(err)
					}
					// Move the previous incarnation's entries to the
					// stale set so growResolve can repair them; the
					// joiner-side first call is a plain SetIncarnation.
					cache.AdvanceIncarnation(p.GroupIncarnation())
					ns := len(srv)
					matSched = growResolve(cache, coupling, "mat",
						growRoutes(ctx, coupling, hpfrt.RowBlockMatrix(n, n, 1), hpfrt.RowBlockMatrix(n, n, ns), matSec),
						p.WorldRank(), &out.Repaired)
					vecSched = growResolve(cache, coupling, "vec",
						growRoutes(ctx, coupling, hpfrt.BlockVector(n, 1), hpfrt.BlockVector(n, ns), vecSec),
						p.WorldRank(), &out.Repaired)
					matSched.MoveSend(a)
				}
				setup()
				// The initial setup assembles from routes, not a donor.
				out.Repaired = 0

				it, slot, known, attempted := 0, 0, len(p.AbsentRanks()), false
				for {
					p.SleepUntil(boundary(slot))
					slot++
					if attempted {
						// A join never voids a slot — no peer the move
						// talked to vanished — so the step always commits.
						commitScale(x, y)
						it++
						attempted = false
					}
					if a := len(p.AbsentRanks()); a != known {
						known = a
						out.Grows++
						setup()
						continue
					}
					if it >= cfg.Iters {
						break
					}
					r1 := vecSched.MoveSend(x)
					r2 := vecSched.MoveReverseRecv(y)
					if !r1.OK() || !r2.OK() {
						panic(&mpsim.NetError{Op: "grow", Rank: p.WorldRank(),
							Peer: firstFailed(r1, r2), Err: mpsim.ErrPeerDead})
					}
					attempted = true
				}
				out.ResultHash = hashVector(x)
				out.FinalServers = coupling.Union.Size() - 1
			}},
			{Name: "server", Procs: total, ProcsPerNode: 1, Body: func(p *mpsim.Proc) {
				// A dormant rank's body launches at its join time; an
				// initial member's at virtual time zero.
				joiner := p.Clock() > 0

				cache := core.NewScheduleCache()
				var srvComm *mpsim.Comm
				var ctx *core.Ctx
				var coupling *core.Coupling
				var a, x, y *hpfrt.Array
				var matSched, vecSched *core.Schedule
				setup := func() {
					srv := liveProgramRanks(p, "server")
					srvComm = p.World().Sub(srv)
					ns, me := srvComm.Size(), srvComm.Rank()
					ctx = core.NewCtx(p, srvComm)
					a = hpfrt.NewArray(hpfrt.RowBlockMatrix(n, n, ns), me)
					x = hpfrt.NewArray(hpfrt.BlockVector(n, ns), me)
					y = hpfrt.NewArray(hpfrt.BlockVector(n, ns), me)
					var err error
					coupling, err = core.NewCoupling(p, p.ProgramRanks("client"), srv)
					if err != nil {
						panic(err)
					}
					cache.AdvanceIncarnation(p.GroupIncarnation())
					matSched = growResolve(cache, coupling, "mat",
						growRoutes(ctx, coupling, hpfrt.RowBlockMatrix(n, n, 1), hpfrt.RowBlockMatrix(n, n, ns), matSec),
						p.WorldRank(), nil)
					vecSched = growResolve(cache, coupling, "vec",
						growRoutes(ctx, coupling, hpfrt.BlockVector(n, 1), hpfrt.BlockVector(n, ns), vecSec),
						p.WorldRank(), nil)
					matSched.MoveRecv(a)
				}

				it, slot, known, attempted := 0, 0, 0, false
				if joiner {
					// Align to the first boundary after the join and
					// force the membership branch there, so this rank's
					// first setup runs in lockstep with the incumbents'
					// regrow in the same slot.
					for boundary(slot) <= p.Clock() {
						slot++
					}
					known = -1
					// Replay the slotted protocol's public state from
					// t=0 to recover the incumbents' committed iteration
					// count.  Membership at every earlier boundary is a
					// pure function of the join plan (JoinedAt), so the
					// replay needs no message — without it this rank
					// would start at iteration 0, outlive the incumbents
					// and deadlock waiting for operands nobody sends.
					absentAt := func(t float64) int {
						a := 0
						for _, r := range p.ProgramRanks("server") {
							if p.JoinedAt(r) > t {
								a++
							}
						}
						return a
					}
					prev := absentAt(0)
					for j := 0; j < slot; j++ {
						if attempted {
							it++
							attempted = false
						}
						if a := absentAt(boundary(j)); a != prev {
							prev = a
							continue
						}
						if it >= cfg.Iters {
							break
						}
						attempted = true
					}
				} else {
					known = len(p.AbsentRanks())
					setup()
				}
				for {
					p.SleepUntil(boundary(slot))
					slot++
					if attempted {
						it++
						attempted = false
					}
					if a := len(p.AbsentRanks()); a != known {
						known = a
						setup()
						continue
					}
					if it >= cfg.Iters {
						break
					}
					if r := vecSched.MoveRecv(x); !r.OK() {
						panic(&mpsim.NetError{Op: "grow", Rank: p.WorldRank(),
							Peer: r.FailedPeers[0], Err: mpsim.ErrPeerDead})
					}
					if err := hpfrt.MatVec(ctx, a, x, y); err != nil {
						panic(err)
					}
					vecSched.MoveReverseSend(y)
					attempted = true
				}
			}},
		},
	})
	out.Joins = st.Joins
	out.Makespan = st.MakespanSeconds
	return out
}
