// The scaled Figure-10 workload: the paper's client/server coupled
// matvec, grown from its 2+8-process measurement to worlds of a
// thousand-plus ranks.  This is the scaling benchmark for the sharded
// mpsim scheduler — the simulated structure (schedule handshake, then
// a vector loop of scatter / server matvec / halo shift / gather) is
// the same as Figure 10's, but the arrays are plain slices moved with
// raw sends, so host time is dominated by the simulator and the
// servers' real floating-point work rather than schedule construction.
package exp

import (
	"hash/fnv"

	"metachaos/internal/codec"
	"metachaos/internal/mpsim"
)

// Figure10ScaleConfig sizes a scaled Figure-10-style run.
type Figure10ScaleConfig struct {
	ClientProcs int
	ServerProcs int
	Vectors     int
	// Rows and Band size each server's local band-matrix block; the
	// per-round compute is Rows*Band multiply-adds per server.
	Rows, Band int
	// Shards pins the simulator's shard count; 0 keeps the default
	// resolution (MPSIM_SHARDS, then auto for >=256-rank worlds).
	Shards int
}

// Figure10ScaleResult carries the run's virtual time and a
// fingerprint of the result stream (for determinism checks and to
// keep the compute from being optimized away).
type Figure10ScaleResult struct {
	Makespan   float64
	ResultHash uint64
}

const f10sTag = 0x60000

// Figure10Scale runs the scaled client/server workload and returns
// its virtual makespan plus a result fingerprint.  Same config, same
// result, independent of shard count and host parallelism.
func Figure10Scale(cfg Figure10ScaleConfig) Figure10ScaleResult {
	if cfg.Rows == 0 {
		cfg.Rows = 64
	}
	if cfg.Band == 0 {
		cfg.Band = 128
	}
	perClient := cfg.ServerProcs / cfg.ClientProcs
	if perClient*cfg.ClientProcs != cfg.ServerProcs {
		panic("exp: Figure10Scale needs ClientProcs | ServerProcs")
	}
	var res Figure10ScaleResult
	st := mpsim.Run(mpsim.Config{
		Machine: mpsim.AlphaFarmATM(),
		Shards:  cfg.Shards,
		Programs: []mpsim.ProgramSpec{
			{Name: "client", Procs: cfg.ClientProcs, ProcsPerNode: 1, Body: func(p *mpsim.Proc) {
				union := p.World()
				me := p.Rank()
				first := cfg.ClientProcs + me*perClient // world rank of first owned server
				// Schedule handshake: one descriptor per owned server,
				// acknowledged before the vector loop (Figure 10's
				// schedule phase in miniature).
				var w codec.Writer
				w.PutInt64(int64(cfg.Rows))
				w.PutInt64(int64(cfg.Band))
				for s := 0; s < perClient; s++ {
					union.Send(first+s, f10sTag, w.Bytes())
				}
				for s := 0; s < perClient; s++ {
					union.Recv(first+s, f10sTag+1)
				}
				// Vector loop: scatter x chunks, gather y chunks.
				x := make([]byte, cfg.Rows*8)
				h := fnv.New64a()
				for v := 0; v < cfg.Vectors; v++ {
					for i := range x {
						x[i] = byte(v + i + me)
					}
					for s := 0; s < perClient; s++ {
						union.Send(first+s, f10sTag+2, x)
					}
					for s := 0; s < perClient; s++ {
						y, _ := union.Recv(first+s, f10sTag+3)
						h.Write(y)
					}
				}
				// Fold every client's fingerprint at client rank 0, in
				// rank order, so the result is one world-level hash.
				parts := p.Comm().Allgather(h.Sum(nil))
				if me == 0 {
					g := fnv.New64a()
					for _, part := range parts {
						g.Write(part)
					}
					res.ResultHash = g.Sum64()
				}
			}},
			{Name: "server", Procs: cfg.ServerProcs, ProcsPerNode: 1, Body: func(p *mpsim.Proc) {
				union := p.World()
				me := p.Rank()
				client := me / perClient // client program rank == world rank
				cfgMsg, _ := union.Recv(client, f10sTag)
				rd := codec.NewReader(cfgMsg)
				rows, band := int(rd.Int64()), int(rd.Int64())
				union.Send(client, f10sTag+1, nil)

				// Local band-matrix block, deterministic contents.
				a := make([]float64, rows*band)
				for i := range a {
					a[i] = float64((i*7+me*3)%13) - 6
				}
				y := make([]float64, rows)
				halo := make([]byte, 8*8) // 8-value boundary exchange
				c := p.Comm()
				for v := 0; v < cfg.Vectors; v++ {
					xb, _ := union.Recv(client, f10sTag+2)
					// y = A*x over the band: real host flops, charged
					// to the virtual clock like hpfrt.MatVec charges.
					for i := 0; i < rows; i++ {
						sum := 0.0
						row := a[i*band : (i+1)*band]
						for j, aij := range row {
							sum += aij * float64(xb[(i+j)%len(xb)])
						}
						y[i] = sum
					}
					p.ChargeFlops(2 * rows * band)
					// Halo shift with ring neighbors (intra-program,
					// overwhelmingly intra-shard traffic).
					next := (me + 1) % c.Size()
					prev := (me + c.Size() - 1) % c.Size()
					c.Send(next, v, halo)
					c.Recv(prev, v)
					var w codec.Writer
					for i := 0; i < rows; i++ {
						w.PutFloat64(y[i])
					}
					union.Send(client, f10sTag+3, w.Bytes())
				}
			}},
		},
	})
	res.Makespan = st.MakespanSeconds
	return res
}
