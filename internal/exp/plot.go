package exp

import (
	"fmt"
	"strings"
)

// Plot renders the table's rows as horizontal ASCII bar charts, one
// block per row, scaled to the table's maximum value — a terminal
// stand-in for the paper's stacked-bar figures.
func (t *Table) Plot() string {
	const width = 48
	maxV := 0.0
	for _, r := range t.Rows {
		for _, v := range r.Values {
			if v == v && v > maxV { // skip NaN
				maxV = v
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "(bars scaled to %s; full bar = %s)\n", t.Unit, formatVal(maxV))
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "\n%s\n", r.Label)
		for i, v := range r.Values {
			label := ""
			if i < len(t.Cols) {
				label = t.Cols[i]
			}
			if v != v {
				fmt.Fprintf(&b, "  %6s |%s\n", label, " (n/a)")
				continue
			}
			n := 0
			if maxV > 0 {
				n = int(v / maxV * width)
			}
			fmt.Fprintf(&b, "  %6s |%s %s\n", label, strings.Repeat("#", n), formatVal(v))
		}
	}
	return b.String()
}
