package exp

import (
	"fmt"
	"math"
)

// csServerSweep is the server process counts of Figures 10-13.
var csServerSweep = []int{1, 2, 4, 8, 12, 16}

// figureCS runs the client/server sweep over server process counts and
// returns the stacked breakdown (one column per server size).
func figureCS(id, title string, clientProcs, vectors int, notes []string) *Table {
	rows := map[string][]float64{
		"compute schedule": make([]float64, len(csServerSweep)),
		"send matrix":      make([]float64, len(csServerSweep)),
		"HPF program":      make([]float64, len(csServerSweep)),
		"send/recv vector": make([]float64, len(csServerSweep)),
		"total":            make([]float64, len(csServerSweep)),
	}
	for i, sp := range csServerSweep {
		b := RunClientServer(CSConfig{ClientProcs: clientProcs, ServerProcs: sp, Vectors: vectors})
		rows["compute schedule"][i] = ms(b.Schedule)
		rows["send matrix"][i] = ms(b.SendMatrix)
		rows["HPF program"][i] = ms(b.Server)
		rows["send/recv vector"][i] = ms(b.Vector)
		rows["total"][i] = ms(b.Total())
	}
	return &Table{
		ID:        id,
		Title:     title,
		Unit:      "msec",
		ColHeader: "server processes",
		Cols:      colLabels(csServerSweep),
		Rows: []Row{
			{Label: "compute schedule", Values: rows["compute schedule"]},
			{Label: "send matrix", Values: rows["send matrix"]},
			{Label: "HPF program", Values: rows["HPF program"]},
			{Label: "send/recv vector", Values: rows["send/recv vector"]},
			{Label: "total", Values: rows["total"]},
		},
		Notes: notes,
	}
}

// Figure10 reproduces Figure 10: total time for a sequential client,
// server on four nodes with up to four processes per node, one vector.
func Figure10() *Table {
	return figureCS("Figure 10",
		"Client/server matrix-vector multiply, sequential client, 1 vector, Alpha farm + ATM",
		1, 1, []string{
			"expected shape: best total at 8 server processes; schedule time falls to ~4 processes then rises (ATM contention, all-to-all message count)",
		})
}

// Figure11 reproduces Figure 11: two-process client on two nodes.
func Figure11() *Table {
	return figureCS("Figure 11",
		"Client/server matrix-vector multiply, two-process client, 1 vector, Alpha farm + ATM",
		2, 1, []string{
			"expected shape: same as Figure 10 with a faster matrix send (two client NICs)",
		})
}

// Figure12 reproduces Figure 12: four-process client on four nodes.
func Figure12() *Table {
	return figureCS("Figure 12",
		"Client/server matrix-vector multiply, four-process client, 1 vector, Alpha farm + ATM",
		4, 1, []string{
			"expected shape: same as Figure 10 with the matrix send further parallelized",
		})
}

// Figure13 reproduces Figure 13: twenty vectors through a sequential
// client — amortizing the schedule and matrix-send overheads.
func Figure13() *Table {
	t := figureCS("Figure 13",
		"Client/server matrix-vector multiply, sequential client, 20 vectors, Alpha farm + ATM",
		1, 20, nil)
	// The paper reports a speedup of ~4.5 at 8 server processes over
	// computing the 20 products in the client.
	local := RunClientLocal(1, 20) * 20
	idx8 := indexOf(csServerSweep, 8)
	if idx8 >= 0 {
		speedup := ms(local) / t.Rows[4].Values[idx8]
		t.Notes = append(t.Notes,
			fmt.Sprintf("client-local compute of 20 vectors: %.0f msec -> speedup %.1f at 8 server processes (paper: 4.5)",
				ms(local), speedup))
	}
	return t
}

// Figure14 reproduces Figure 14: total time against the number of
// vectors for a sequential client and the best (eight-process) server.
func Figure14() *Table {
	counts := []int{1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20}
	rows := map[string][]float64{}
	for _, k := range []string{"compute schedule", "send matrix", "HPF program", "send/recv vector", "total"} {
		rows[k] = make([]float64, len(counts))
	}
	for i, v := range counts {
		b := RunClientServer(CSConfig{ClientProcs: 1, ServerProcs: 8, Vectors: v})
		rows["compute schedule"][i] = ms(b.Schedule)
		rows["send matrix"][i] = ms(b.SendMatrix)
		rows["HPF program"][i] = ms(b.Server)
		rows["send/recv vector"][i] = ms(b.Vector)
		rows["total"][i] = ms(b.Total())
	}
	return &Table{
		ID:        "Figure 14",
		Title:     "Total time vs number of vectors, sequential client, 8-process server, Alpha farm + ATM",
		Unit:      "msec",
		ColHeader: "vectors",
		Cols:      colLabels(counts),
		Rows: []Row{
			{Label: "compute schedule", Values: rows["compute schedule"]},
			{Label: "send matrix", Values: rows["send matrix"]},
			{Label: "HPF program", Values: rows["HPF program"]},
			{Label: "send/recv vector", Values: rows["send/recv vector"]},
			{Label: "total", Values: rows["total"]},
		},
		Notes: []string{
			"expected shape: schedule and matrix-send components constant; per-vector components grow linearly",
		},
	}
}

// Figure15 reproduces Figure 15: the number of vectors that must be
// multiplied by the same matrix before using the server beats
// computing in the client, for one- and two-process clients.
func Figure15() *Table {
	servers := []int{2, 4, 8, 12, 16}
	clients := []int{1, 2}
	values := make([][]float64, len(clients))
	for ci, cp := range clients {
		values[ci] = make([]float64, len(servers))
		local := RunClientLocal(cp, 10)
		for si, sp := range servers {
			b := RunClientServer(CSConfig{ClientProcs: cp, ServerProcs: sp, Vectors: 10})
			overhead := b.Schedule + b.SendMatrix
			perVec := (b.Server + b.Vector) / 10
			if local <= perVec {
				values[ci][si] = nan() // never amortized
				continue
			}
			values[ci][si] = math.Ceil(overhead / (local - perVec))
		}
	}
	return &Table{
		ID:        "Figure 15",
		Title:     "Break-even number of exchanged vectors (client computes locally vs uses the HPF server), Alpha farm + ATM",
		Unit:      "vectors",
		ColHeader: "server processes",
		Cols:      colLabels(servers),
		Rows: []Row{
			{Label: "1 client process", Values: values[0]},
			{Label: "2 client processes", Values: values[1]},
		},
		Notes: []string{
			"'-' marks configurations whose overhead is never amortized (the paper shows none for a 2-process client with a 2-process server)",
			"expected shape: best break-even at the 8-process server; ~2 vectors for 1-client/4-server",
		},
	}
}

func nan() float64 { return math.NaN() }

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}
