package serve

import "fmt"

// ScriptOp is one move in a coupling's replayable op sequence.
type ScriptOp struct {
	// Kind is OpMove, OpMoveAdd or OpMoveReverse.
	Kind int
	// Seed drives the deterministic fill of the sending side (ignored
	// when Payload is set).
	Seed int64
	// Payload, when non-nil, fills the sending side with explicit
	// global values (length elems × words, position-major).
	Payload []float64
	// WantData returns the landing side's global values in the result.
	WantData bool
}

// Standalone executes one tenant's coupling script on a private,
// freshly built world — the same resident-world machinery with no
// server, no other tenants and no batching — and returns one MoveStats
// per op.  Because daemon execution broadcasts the identical command
// stream into an identically shaped world, the hashes here are the
// bit-identical reference for what a tenant must observe through
// mcserved, whatever multiplexing happened around it.
func Standalone(src, dst DistSpec, ops []ScriptOp) ([]MoveStats, error) {
	if err := src.validate(0); err != nil {
		return nil, fmt.Errorf("source: %w", err)
	}
	if err := dst.validate(0); err != nil {
		return nil, fmt.Errorf("destination: %w", err)
	}
	if err := validatePair(&src, &dst); err != nil {
		return nil, err
	}
	r := newRunner(runnerConfig{key: worldKey{srcProcs: src.Procs, dstProcs: dst.Procs}, maxBatch: 1})
	defer r.stop()
	const handle = 1
	if _, err := r.do(&op{cmd: cmdOpen, handle: handle, src: src, dst: dst}); err != nil {
		return nil, err
	}
	out := make([]MoveStats, 0, len(ops))
	for _, so := range ops {
		flags := 0
		if so.WantData {
			flags |= flagWantData
		}
		if so.Payload != nil {
			flags |= flagHasPayload
		}
		rep, err := r.do(&op{
			cmd: cmdMove, handle: handle,
			moveKind: so.Kind, seed: so.Seed, flags: flags, payload: so.Payload,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, MoveStats{Hash: rep.hash, Elems: rep.elems, Cost: rep.cost, Data: rep.data})
	}
	if _, err := r.do(&op{cmd: cmdClose, handle: handle}); err != nil {
		return nil, err
	}
	return out, nil
}
