package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAB}, 4096)}
	for i, p := range payloads {
		if err := writeFrame(&buf, byte(i+1), uint32(100+i), p); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i, p := range payloads {
		typ, id, payload, err := readFrame(&buf, DefaultMaxFrame)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if typ != byte(i+1) || id != uint32(100+i) || !bytes.Equal(payload, p) {
			t.Errorf("frame %d: typ=%d id=%d len=%d", i, typ, id, len(payload))
		}
	}
	if _, _, _, err := readFrame(&buf, DefaultMaxFrame); err != io.EOF {
		t.Errorf("empty stream: %v, want io.EOF", err)
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	writeFrame(&buf, 7, 1, []byte("hello coupling service"))
	b := buf.Bytes()
	b[9] ^= 0x40 // flip a payload bit; the checksum trailer must catch it
	_, _, _, err := readFrame(bytes.NewReader(b), DefaultMaxFrame)
	if !errors.Is(err, ErrProtocol) {
		t.Errorf("corrupted payload: %v, want ErrProtocol", err)
	}
}

func TestFrameRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	writeFrame(&buf, 7, 1, []byte("truncated"))
	b := buf.Bytes()[:buf.Len()-3]
	_, _, _, err := readFrame(bytes.NewReader(b), DefaultMaxFrame)
	if !errors.Is(err, ErrProtocol) {
		t.Errorf("truncated frame: %v, want ErrProtocol", err)
	}
}

func TestFrameRejectsOversizeAndRunt(t *testing.T) {
	var buf bytes.Buffer
	writeFrame(&buf, 7, 1, bytes.Repeat([]byte{1}, 100))
	if _, _, _, err := readFrame(bytes.NewReader(buf.Bytes()), 99); !errors.Is(err, ErrProtocol) {
		t.Errorf("oversized payload: %v, want ErrProtocol", err)
	}
	// A frame shorter than its own fixed header is structurally broken.
	var runt [4]byte
	binary.LittleEndian.PutUint32(runt[:], uint32(frameOverhead-1))
	if _, _, _, err := readFrame(bytes.NewReader(runt[:]), DefaultMaxFrame); !errors.Is(err, ErrProtocol) {
		t.Errorf("runt frame: %v, want ErrProtocol", err)
	}
}
