package serve

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"metachaos/internal/codec"
)

// session is one connection's request loop.  The durable half of a
// tenant lives in tenantState, which survives the connection: a client
// that reconnects and presents its resume token re-attaches to the
// same state, so registered distributions, open couplings and the
// dedup cache all outlive wire faults.
type session struct {
	srv  *Server
	conn net.Conn
	st   *tenantState // nil until Hello
}

// tenantState is one leased tenant session.
type tenantState struct {
	token  string
	tenant string

	// reqMu serializes request execution for this tenant across every
	// connection that ever attaches, and is how lease expiry
	// synchronizes with an in-flight request: the sweeper reclaims a
	// session only while holding it.
	reqMu sync.Mutex

	// Request-path state; reqMu serializes access.
	dists map[int32]*DistSpec
	// cpls additionally takes srv.mu around mutations, because world
	// revival scans it from outside the request path.
	cpls map[int32]*liveCoupling

	// Idempotent-retry dedup: the cached reply of the last successfully
	// applied mutating op, keyed by its request id (the client's
	// session-scoped sequence number).  A retried id is answered from
	// here without re-executing; reqMu serializes access.
	lastReply replyCache

	// Guarded by srv.mu:
	conn     net.Conn  // attached connection; nil while detached
	deadline time.Time // lease expiry instant; zero = never
	gone     bool      // reclaimed (Bye or lease expiry)
}

// replyCache is one cached response frame for dedup.
type replyCache struct {
	valid   bool
	id      uint32
	typ     byte
	payload []byte
}

// liveCoupling is one open coupling of a leased session.
type liveCoupling struct {
	handle int64
	elems  int
	words  int
	key    worldKey
	src    DistSpec
	dst    DistSpec

	// Guarded by srv.mu: the current runner (revival repoints it), the
	// respawn journal, and the terminal-failure marker.
	r           *runner
	journal     []moveRec
	journalLost bool
	broken      error
}

// moveRec is one journaled move: enough to re-execute it bit-for-bit,
// plus the hash the original execution produced so replay is verified,
// not assumed.
type moveRec struct {
	kind    int
	seed    int64
	flags   int
	payload []float64
	hash    uint64
}

// mutatingReq reports whether a request type changes session or world
// state (and therefore joins the dedup cache on success).
func mutatingReq(typ byte) bool {
	switch typ {
	case msgRegisterDist, msgOpenCoupling, msgMove, msgCloseCoupling:
		return true
	}
	return false
}

// serve runs the connection to completion.
func (ss *session) serve() {
	defer ss.srv.dropConn(ss)
	defer ss.conn.Close()
	defer ss.detach()
	for {
		typ, id, payload, err := readFrame(ss.conn, ss.srv.opts.MaxFrame)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				// Best-effort: a malformed frame gets one explanation
				// before the connection drops.
				writeFrame(ss.conn, msgError, 0, encodeError(err))
			}
			return
		}
		if typ == msgHello {
			rtyp, rpayload, herr := ss.hello(payload)
			if herr != nil {
				rtyp, rpayload = msgError, encodeError(herr)
			}
			if werr := writeFrame(ss.conn, rtyp, id, rpayload); werr != nil || herr != nil {
				return
			}
			continue
		}
		st := ss.st
		if st == nil {
			writeFrame(ss.conn, msgError, id, encodeError(fmt.Errorf("%w: hello must come first", ErrProtocol)))
			return
		}
		st.reqMu.Lock()
		if ss.srv.isGone(st) {
			st.reqMu.Unlock()
			writeFrame(ss.conn, msgError, id, encodeError(fmt.Errorf("%w: session was reclaimed", ErrUnknownSession)))
			return
		}
		ss.srv.touch(st)
		if st.lastReply.valid && id == st.lastReply.id {
			// A retry of the last applied mutating op: answer from the
			// cache, do not re-execute.  This is what makes client-side
			// retry after a lost reply exactly idempotent.
			rtyp, rpayload := st.lastReply.typ, st.lastReply.payload
			st.reqMu.Unlock()
			ss.srv.count("serve_dedup_replies_total", 1)
			if werr := writeFrame(ss.conn, rtyp, id, rpayload); werr != nil {
				return
			}
			continue
		}
		rtyp, rpayload, herr := ss.handle(typ, payload)
		if herr != nil {
			rtyp, rpayload = msgError, encodeError(herr)
		} else if mutatingReq(typ) {
			st.lastReply = replyCache{valid: true, id: id, typ: rtyp, payload: rpayload}
		}
		st.reqMu.Unlock()
		if werr := writeFrame(ss.conn, rtyp, id, rpayload); werr != nil {
			return
		}
		if typ == msgBye && herr == nil {
			ss.srv.finish(st)
			ss.srv.logf("serve: tenant %q disconnected", st.tenant)
			return
		}
	}
}

// detach parks the session state for resume when the connection dies
// without a Bye.
func (ss *session) detach() {
	if ss.st != nil {
		ss.srv.detach(ss.st, ss.conn)
	}
}

// hello establishes or resumes a session on this connection.
func (ss *session) hello(payload []byte) (rtyp byte, rpayload []byte, err error) {
	defer func() {
		if v := recover(); v != nil {
			rtyp, rpayload = 0, nil
			err = fmt.Errorf("%w: malformed hello payload: %v", ErrProtocol, v)
		}
	}()
	r := codec.NewReader(payload)
	tenant := r.String()
	version := r.Int32()
	if version != protoVersion {
		return 0, nil, fmt.Errorf("%w: client speaks protocol %d, server %d", ErrProtocol, version, protoVersion)
	}
	resume := r.String()
	if ss.st != nil {
		return 0, nil, fmt.Errorf("%w: session already established on this connection", ErrProtocol)
	}
	var st *tenantState
	if resume != "" {
		st, err = ss.srv.resume(resume, ss.conn)
		if err != nil {
			return 0, nil, err
		}
		ss.srv.logf("serve: tenant %q resumed session %s", st.tenant, st.token)
	} else {
		st, err = ss.srv.newState(tenant, ss.conn)
		if err != nil {
			return 0, nil, err
		}
		ss.srv.logf("serve: tenant %q connected (session %s)", tenant, st.token)
	}
	ss.st = st
	var w codec.Writer
	w.PutInt32(protoVersion)
	w.PutString("mcserved")
	w.PutString("sp2")
	w.PutString(st.token)
	w.PutInt64(int64(ss.srv.opts.Lease / time.Millisecond))
	return msgWelcome, w.Bytes(), nil
}

// handle dispatches one post-hello request and returns the response
// frame; the caller holds st.reqMu.
func (ss *session) handle(typ byte, payload []byte) (rtyp byte, rpayload []byte, err error) {
	defer func() {
		// A torn payload (codec.Reader panics on truncation) is the
		// client's fault, not grounds for killing the daemon.
		if v := recover(); v != nil {
			rtyp, rpayload = 0, nil
			err = fmt.Errorf("%w: malformed request %d payload: %v", ErrProtocol, typ, v)
		}
	}()
	switch typ {
	case msgRegisterDist:
		return ss.registerDist(payload)
	case msgOpenCoupling:
		return ss.openCoupling(payload)
	case msgMove:
		return ss.move(payload)
	case msgCloseCoupling:
		return ss.closeCoupling(payload)
	case msgStats:
		return ss.stats()
	case msgPing:
		// The lease was already refreshed on receipt; nothing else to do.
		return msgOK, nil, nil
	case msgBye:
		return msgOK, nil, nil
	}
	return 0, nil, fmt.Errorf("%w: unknown request type %d", ErrProtocol, typ)
}

func (ss *session) registerDist(payload []byte) (byte, []byte, error) {
	r := codec.NewReader(payload)
	id := r.Int32()
	spec := readSpec(r)
	if err := spec.validate(ss.srv.opts.MaxProcs); err != nil {
		return 0, nil, err
	}
	if spec.elems() > maxElems {
		return 0, nil, fmt.Errorf("%w: %d elements exceeds the %d-element cap", ErrTooLarge, spec.elems(), maxElems)
	}
	if _, exists := ss.st.dists[id]; !exists && len(ss.st.dists) >= ss.srv.opts.MaxDists {
		return 0, nil, fmt.Errorf("%w: %d distributions registered", ErrLimit, len(ss.st.dists))
	}
	ss.st.dists[id] = &spec
	return msgOK, nil, nil
}

func (ss *session) openCoupling(payload []byte) (byte, []byte, error) {
	r := codec.NewReader(payload)
	id := r.Int32()
	src, ok := ss.st.dists[r.Int32()]
	if !ok {
		return 0, nil, fmt.Errorf("%w: source distribution not registered", ErrUnknownDist)
	}
	dst, ok := ss.st.dists[r.Int32()]
	if !ok {
		return 0, nil, fmt.Errorf("%w: destination distribution not registered", ErrUnknownDist)
	}
	if err := validatePair(src, dst); err != nil {
		return 0, nil, err
	}
	if _, exists := ss.st.cpls[id]; exists {
		return 0, nil, fmt.Errorf("%w: coupling %d is already open", ErrBadSpec, id)
	}
	if len(ss.st.cpls) >= ss.srv.opts.MaxCouplings {
		return 0, nil, fmt.Errorf("%w: %d couplings open", ErrLimit, len(ss.st.cpls))
	}
	key := worldKey{srcProcs: src.Procs, dstProcs: dst.Procs}
	run, err := ss.srv.runnerFor(key)
	if err != nil {
		return 0, nil, err
	}
	o := &op{cmd: cmdOpen, handle: ss.srv.handle(), src: *src, dst: *dst}
	rep, err := run.do(o)
	if err != nil {
		return 0, nil, ss.retryableOr(key, err)
	}
	lc := &liveCoupling{
		r: run, handle: o.handle, elems: rep.elems, words: src.words(),
		key: key, src: *src, dst: *dst,
	}
	ss.srv.addCoupling(ss.st, id, lc)
	ss.srv.count("serve_opens_total", 1)
	if rep.warm {
		ss.srv.count("serve_open_warm_total", 1)
	}
	if rep.repaired {
		ss.srv.count("serve_open_repaired_total", 1)
	}
	ss.srv.noteEvict(run, rep.evict)
	var w codec.Writer
	warm := int32(0)
	if rep.warm {
		warm = 1
	}
	w.PutInt32(warm)
	w.PutInt64(int64(rep.elems))
	return msgCouplingReady, w.Bytes(), nil
}

// retryableOr converts a world-death failure into ErrRetryable after
// synchronously reviving the world, so the client's resend lands on a
// replayed, consistent state; any other error passes through.
func (ss *session) retryableOr(key worldKey, err error) error {
	if !errors.Is(err, ErrWorldFailed) {
		return err
	}
	if _, rerr := ss.srv.revive(key); rerr != nil {
		return err
	}
	ss.srv.count("serve_retryable_total", 1)
	return fmt.Errorf("%w: resident world %dx%d died mid-op; respawned and replayed",
		ErrRetryable, key.srcProcs, key.dstProcs)
}

func (ss *session) move(payload []byte) (byte, []byte, error) {
	r := codec.NewReader(payload)
	id := r.Int32()
	kind := int(r.Int32())
	seed := r.Int64()
	flags := int(r.Int32())
	var values []float64
	if flags&flagHasPayload != 0 {
		values = r.Float64s()
	}
	lc, ok := ss.st.cpls[id]
	if !ok {
		return 0, nil, fmt.Errorf("%w: coupling %d is not open", ErrUnknownCoupling, id)
	}
	if br := ss.srv.brokenOf(lc); br != nil {
		return 0, nil, br
	}
	if kind != OpMove && kind != OpMoveAdd && kind != OpMoveReverse {
		return 0, nil, fmt.Errorf("%w: move kind %d", ErrBadSpec, kind)
	}
	if values != nil && len(values) != lc.elems*lc.words {
		return 0, nil, fmt.Errorf("%w: payload has %d values, coupling moves %d",
			ErrBadSpec, len(values), lc.elems*lc.words)
	}
	if !ss.srv.tryAcquire() {
		return 0, nil, fmt.Errorf("%w: %d moves in flight", ErrBackpressure, ss.srv.opts.MaxInflight)
	}
	defer ss.srv.release()
	run := ss.srv.runnerOf(lc)
	rep, err := run.do(&op{
		cmd: cmdMove, handle: lc.handle,
		moveKind: kind, seed: seed, flags: flags, payload: values,
	})
	if err != nil {
		return 0, nil, ss.retryableOr(lc.key, err)
	}
	ss.srv.journal(lc, moveRec{kind: kind, seed: seed, flags: flags, payload: values, hash: rep.hash})
	ss.srv.count("serve_moves_total", 1)
	ss.srv.noteEvict(run, rep.evict)
	var w codec.Writer
	w.PutInt64(int64(rep.hash))
	w.PutInt64(int64(rep.elems))
	w.PutFloat64(rep.cost)
	w.PutFloat64s(rep.data)
	return msgMoveDone, w.Bytes(), nil
}

func (ss *session) closeCoupling(payload []byte) (byte, []byte, error) {
	id := codec.NewReader(payload).Int32()
	lc, ok := ss.st.cpls[id]
	if !ok {
		return 0, nil, fmt.Errorf("%w: coupling %d is not open", ErrUnknownCoupling, id)
	}
	// Unpublish before the world-side close so a concurrent revival
	// never replays a coupling the tenant is discarding; a close on an
	// already-dead world succeeds trivially (the handle died with it).
	ss.srv.removeCoupling(ss.st, id)
	if _, err := ss.srv.runnerOf(lc).do(&op{cmd: cmdClose, handle: lc.handle}); err != nil &&
		!errors.Is(err, ErrWorldFailed) && !errors.Is(err, ErrShuttingDown) {
		return 0, nil, err
	}
	return msgOK, nil, nil
}

func (ss *session) stats() (byte, []byte, error) {
	stats := ss.srv.Stats()
	var w codec.Writer
	w.PutInt32(int32(len(stats)))
	for _, name := range sortedKeys(stats) {
		w.PutString(name)
		w.PutFloat64(stats[name])
	}
	return msgStatsReply, w.Bytes(), nil
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
