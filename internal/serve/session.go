package serve

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"

	"metachaos/internal/codec"
)

// session is one connected tenant: a sequential request loop over the
// connection.  Requests from one tenant execute in order; concurrency
// comes from many sessions feeding the shared resident worlds, whose
// dispatchers batch the cross-tenant traffic.
type session struct {
	srv    *Server
	conn   net.Conn
	tenant string
	dists  map[int32]*DistSpec
	cpls   map[int32]*liveCoupling
}

// liveCoupling is one open coupling of this session.
type liveCoupling struct {
	r      *runner
	handle int64
	elems  int
	words  int
}

func newSession(s *Server, conn net.Conn) *session {
	return &session{
		srv:   s,
		conn:  conn,
		dists: make(map[int32]*DistSpec),
		cpls:  make(map[int32]*liveCoupling),
	}
}

// serve runs the session to completion.
func (ss *session) serve() {
	defer ss.srv.drop(ss)
	defer ss.conn.Close()
	defer ss.closeAll()
	for {
		typ, id, payload, err := readFrame(ss.conn, ss.srv.opts.MaxFrame)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				// Best-effort: a malformed frame gets one explanation
				// before the connection drops.
				writeFrame(ss.conn, msgError, 0, encodeError(err))
			}
			return
		}
		rtyp, rpayload, err := ss.handle(typ, payload)
		if err != nil {
			rtyp, rpayload = msgError, encodeError(err)
		}
		if werr := writeFrame(ss.conn, rtyp, id, rpayload); werr != nil {
			return
		}
		if typ == msgBye {
			ss.srv.logf("serve: tenant %q disconnected", ss.tenant)
			return
		}
	}
}

// closeAll releases the session's open couplings in the resident
// worlds (schedules stay cached for the next tenant).
func (ss *session) closeAll() {
	for id, lc := range ss.cpls {
		lc.r.do(&op{cmd: cmdClose, handle: lc.handle})
		delete(ss.cpls, id)
	}
}

// handle dispatches one request and returns the response frame.
func (ss *session) handle(typ byte, payload []byte) (rtyp byte, rpayload []byte, err error) {
	defer func() {
		// A torn payload (codec.Reader panics on truncation) is the
		// client's fault, not grounds for killing the daemon.
		if v := recover(); v != nil {
			rtyp, rpayload = 0, nil
			err = fmt.Errorf("%w: malformed request %d payload: %v", ErrProtocol, typ, v)
		}
	}()
	switch typ {
	case msgHello:
		return ss.hello(payload)
	case msgRegisterDist:
		return ss.registerDist(payload)
	case msgOpenCoupling:
		return ss.openCoupling(payload)
	case msgMove:
		return ss.move(payload)
	case msgCloseCoupling:
		return ss.closeCoupling(payload)
	case msgStats:
		return ss.stats()
	case msgBye:
		return msgOK, nil, nil
	}
	return 0, nil, fmt.Errorf("%w: unknown request type %d", ErrProtocol, typ)
}

func (ss *session) hello(payload []byte) (byte, []byte, error) {
	r := codec.NewReader(payload)
	tenant := r.String()
	version := r.Int32()
	if version != protoVersion {
		return 0, nil, fmt.Errorf("%w: client speaks protocol %d, server %d", ErrProtocol, version, protoVersion)
	}
	ss.tenant = tenant
	ss.srv.logf("serve: tenant %q connected", tenant)
	var w codec.Writer
	w.PutInt32(protoVersion)
	w.PutString("mcserved")
	w.PutString("sp2")
	return msgWelcome, w.Bytes(), nil
}

func (ss *session) registerDist(payload []byte) (byte, []byte, error) {
	r := codec.NewReader(payload)
	id := r.Int32()
	spec := readSpec(r)
	if err := spec.validate(ss.srv.opts.MaxProcs); err != nil {
		return 0, nil, err
	}
	if spec.elems() > maxElems {
		return 0, nil, fmt.Errorf("%w: %d elements exceeds the %d-element cap", ErrTooLarge, spec.elems(), maxElems)
	}
	if _, exists := ss.dists[id]; !exists && len(ss.dists) >= ss.srv.opts.MaxDists {
		return 0, nil, fmt.Errorf("%w: %d distributions registered", ErrLimit, len(ss.dists))
	}
	ss.dists[id] = &spec
	return msgOK, nil, nil
}

func (ss *session) openCoupling(payload []byte) (byte, []byte, error) {
	r := codec.NewReader(payload)
	id := r.Int32()
	src, ok := ss.dists[r.Int32()]
	if !ok {
		return 0, nil, fmt.Errorf("%w: source distribution not registered", ErrUnknownDist)
	}
	dst, ok := ss.dists[r.Int32()]
	if !ok {
		return 0, nil, fmt.Errorf("%w: destination distribution not registered", ErrUnknownDist)
	}
	if err := validatePair(src, dst); err != nil {
		return 0, nil, err
	}
	if _, exists := ss.cpls[id]; exists {
		return 0, nil, fmt.Errorf("%w: coupling %d is already open", ErrBadSpec, id)
	}
	if len(ss.cpls) >= ss.srv.opts.MaxCouplings {
		return 0, nil, fmt.Errorf("%w: %d couplings open", ErrLimit, len(ss.cpls))
	}
	run, err := ss.srv.runnerFor(worldKey{srcProcs: src.Procs, dstProcs: dst.Procs})
	if err != nil {
		return 0, nil, err
	}
	o := &op{cmd: cmdOpen, handle: ss.srv.handle(), src: *src, dst: *dst}
	rep, err := run.do(o)
	if err != nil {
		return 0, nil, err
	}
	ss.cpls[id] = &liveCoupling{r: run, handle: o.handle, elems: rep.elems, words: src.words()}
	ss.srv.count("serve_opens_total", 1)
	if rep.warm {
		ss.srv.count("serve_open_warm_total", 1)
	}
	if rep.repaired {
		ss.srv.count("serve_open_repaired_total", 1)
	}
	var w codec.Writer
	warm := int32(0)
	if rep.warm {
		warm = 1
	}
	w.PutInt32(warm)
	w.PutInt64(int64(rep.elems))
	return msgCouplingReady, w.Bytes(), nil
}

func (ss *session) move(payload []byte) (byte, []byte, error) {
	r := codec.NewReader(payload)
	id := r.Int32()
	kind := int(r.Int32())
	seed := r.Int64()
	flags := int(r.Int32())
	var values []float64
	if flags&flagHasPayload != 0 {
		values = r.Float64s()
	}
	lc, ok := ss.cpls[id]
	if !ok {
		return 0, nil, fmt.Errorf("%w: coupling %d is not open", ErrUnknownCoupling, id)
	}
	if kind != OpMove && kind != OpMoveAdd && kind != OpMoveReverse {
		return 0, nil, fmt.Errorf("%w: move kind %d", ErrBadSpec, kind)
	}
	if values != nil && len(values) != lc.elems*lc.words {
		return 0, nil, fmt.Errorf("%w: payload has %d values, coupling moves %d",
			ErrBadSpec, len(values), lc.elems*lc.words)
	}
	if !ss.srv.tryAcquire() {
		return 0, nil, fmt.Errorf("%w: %d moves in flight", ErrBackpressure, ss.srv.opts.MaxInflight)
	}
	defer ss.srv.release()
	rep, err := lc.r.do(&op{
		cmd: cmdMove, handle: lc.handle,
		moveKind: kind, seed: seed, flags: flags, payload: values,
	})
	if err != nil {
		return 0, nil, err
	}
	ss.srv.count("serve_moves_total", 1)
	var w codec.Writer
	w.PutInt64(int64(rep.hash))
	w.PutInt64(int64(rep.elems))
	w.PutFloat64(rep.cost)
	w.PutFloat64s(rep.data)
	return msgMoveDone, w.Bytes(), nil
}

func (ss *session) closeCoupling(payload []byte) (byte, []byte, error) {
	id := codec.NewReader(payload).Int32()
	lc, ok := ss.cpls[id]
	if !ok {
		return 0, nil, fmt.Errorf("%w: coupling %d is not open", ErrUnknownCoupling, id)
	}
	delete(ss.cpls, id)
	if _, err := lc.r.do(&op{cmd: cmdClose, handle: lc.handle}); err != nil {
		return 0, nil, err
	}
	return msgOK, nil, nil
}

func (ss *session) stats() (byte, []byte, error) {
	stats := ss.srv.Stats()
	var w codec.Writer
	w.PutInt32(int32(len(stats)))
	for _, name := range sortedKeys(stats) {
		w.PutString(name)
		w.PutFloat64(stats[name])
	}
	return msgStatsReply, w.Bytes(), nil
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
