// Package serve is the Meta-Chaos coupling service: a resident daemon
// (cmd/mcserved) that multiplexes many concurrent tenant sessions onto
// shared simulated worlds.  Client programs connect over a real socket
// (TCP or unix-domain), register distributions, request couplings, and
// stream Move/MoveAdd/MoveReverse traffic; the server executes the
// couplings on long-running mpsim worlds whose per-rank ScheduleCaches
// persist across tenants, so sessions declaring the same distribution
// pair hit warm schedules — the paper's amortization argument (Table
// 2: schedule construction dominates redistribution cost) turned into
// a serving system.
//
// The package also provides the matching Client and a Standalone
// reference executor used by tests and cmd/mcload to verify that
// multiplexed, batched, cache-shared execution is bit-identical to
// running the same couplings alone.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
)

// Frame layout, little-endian (the byte order of internal/codec, which
// encodes every frame payload):
//
//	u32  length of everything after this field (type + id + payload + checksum)
//	u8   message type
//	u32  request id (echoed in the response; sessions may pipeline)
//	...  payload (codec.Writer-encoded, length-5-8 bytes)
//	u64  FNV-1a checksum of the payload
//
// The trailing checksum mirrors the end-to-end trailer the core move
// executor puts on simulated wire payloads: a frame that arrives
// damaged is rejected as ErrProtocol instead of being decoded into
// garbage.

// frameOverhead is the non-payload byte count after the length field.
const frameOverhead = 1 + 4 + 8

// DefaultMaxFrame bounds a frame's payload unless Options overrides
// it; oversized frames are a protocol error, not an allocation.
const DefaultMaxFrame = 16 << 20

// ErrProtocol reports a malformed, corrupted or oversized frame.  It
// is returned (wrapped with detail) by both endpoints' readers.
var ErrProtocol = errors.New("serve: protocol error")

// writeFrame encodes and writes one frame.
func writeFrame(w io.Writer, typ byte, id uint32, payload []byte) error {
	hdr := make([]byte, 4+1+4)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(frameOverhead+len(payload)))
	hdr[4] = typ
	binary.LittleEndian.PutUint32(hdr[5:], id)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], fnv64a(payload))
	_, err := w.Write(sum[:])
	return err
}

// readFrame reads and verifies one frame, rejecting payloads larger
// than maxPayload.  io.EOF before the first header byte is a clean
// connection close and is returned unwrapped.
func readFrame(r io.Reader, maxPayload int) (typ byte, id uint32, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if err == io.EOF {
			return 0, 0, nil, io.EOF
		}
		return 0, 0, nil, fmt.Errorf("%w: reading frame length: %v", ErrProtocol, err)
	}
	total := int(binary.LittleEndian.Uint32(lenBuf[:]))
	if total < frameOverhead {
		return 0, 0, nil, fmt.Errorf("%w: frame of %d bytes is shorter than its own header", ErrProtocol, total)
	}
	if total-frameOverhead > maxPayload {
		return 0, 0, nil, fmt.Errorf("%w: frame payload of %d bytes exceeds the %d-byte limit", ErrProtocol, total-frameOverhead, maxPayload)
	}
	body := make([]byte, total)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, 0, nil, fmt.Errorf("%w: reading frame body: %v", ErrProtocol, err)
	}
	typ = body[0]
	id = binary.LittleEndian.Uint32(body[1:5])
	payload = body[5 : total-8]
	want := binary.LittleEndian.Uint64(body[total-8:])
	if got := fnv64a(payload); got != want {
		return 0, 0, nil, fmt.Errorf("%w: frame checksum mismatch (got %016x, want %016x)", ErrProtocol, got, want)
	}
	return typ, id, payload, nil
}

// fnv64a is the frame checksum (the same FNV-1a the move executor and
// checkpoint store use for their payload trailers).
func fnv64a(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}
