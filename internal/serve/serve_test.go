package serve

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// testSpecs returns the canonical HPF-to-Parti vector pair the tests
// couple: 60 elements block-distributed over 3 source and 2
// destination processes.
func testSpecs() (DistSpec, DistSpec) {
	src := DistSpec{Library: "hpfrt", Layout: "blockvec", Shape: []int{60}, Procs: 3}
	dst := DistSpec{Library: "mbparti", Layout: "blockvec", Shape: []int{60}, Procs: 2}
	return src, dst
}

// startServer runs a daemon on a unix socket in a test tempdir and
// returns its address plus a cleanup-registered shutdown.
func startServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "mc.sock")
	srv := NewServer(opts)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe("unix", sock) }()
	// Wait for the listener to come up.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Addr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("server did not start listening")
		}
		time.Sleep(time.Millisecond)
	}
	t.Cleanup(func() {
		srv.Close()
		if err := <-errc; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, sock
}

// dialT connects a test tenant.
func dialT(t *testing.T, sock, tenant string) *Client {
	t.Helper()
	c, err := Dial("unix", sock, tenant)
	if err != nil {
		t.Fatalf("dial %s: %v", tenant, err)
	}
	return c
}

// setupCoupling registers the canonical pair and opens coupling 1.
func setupCoupling(t *testing.T, c *Client) (warm bool, elems int) {
	t.Helper()
	src, dst := testSpecs()
	if err := c.RegisterDist(1, src); err != nil {
		t.Fatalf("register src: %v", err)
	}
	if err := c.RegisterDist(2, dst); err != nil {
		t.Fatalf("register dst: %v", err)
	}
	warm, elems, err := c.OpenCoupling(1, 1, 2)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return warm, elems
}

// TestServeMatchesStandalone is the core acceptance property: a
// tenant's move hashes through the daemon are bit-identical to a
// standalone replay of the same op sequence, for all three move kinds
// (including MoveAdd's accumulated state).
func TestServeMatchesStandalone(t *testing.T) {
	_, sock := startServer(t, Options{FlushWindow: -1})
	c := dialT(t, sock, "alice")
	defer c.Close()
	warm, elems := setupCoupling(t, c)
	if warm {
		t.Error("first open of a fresh daemon reported a warm schedule")
	}
	if elems != 60 {
		t.Errorf("elems = %d, want 60", elems)
	}
	ops := []ScriptOp{
		{Kind: OpMove, Seed: 11},
		{Kind: OpMoveAdd, Seed: 22},
		{Kind: OpMoveAdd, Seed: 22},
		{Kind: OpMoveReverse, Seed: 33},
		{Kind: OpMove, Seed: 11},
	}
	var served []uint64
	for _, op := range ops {
		st, err := c.Move(1, op.Kind, op.Seed)
		if err != nil {
			t.Fatalf("move %+v: %v", op, err)
		}
		if st.Elems != 60 {
			t.Errorf("move elems = %d, want 60", st.Elems)
		}
		served = append(served, st.Hash)
	}
	src, dst := testSpecs()
	ref, err := Standalone(src, dst, ops)
	if err != nil {
		t.Fatalf("standalone: %v", err)
	}
	for i := range ops {
		if served[i] != ref[i].Hash {
			t.Errorf("move %d: served hash %016x != standalone %016x", i, served[i], ref[i].Hash)
		}
	}
	// Identical seeds produce identical hashes; the accumulated MoveAdd
	// state must differ from the plain copy.
	if served[0] != served[4] {
		t.Error("same seed, same kind produced different hashes")
	}
	if served[1] == served[2] {
		t.Error("repeated MoveAdd did not change the accumulated destination")
	}
}

// TestServeDataCorrectness checks actual element movement end to end:
// an explicit payload lands on the destination exactly, and a
// seed-filled move returns the generator's values.
func TestServeDataCorrectness(t *testing.T) {
	_, sock := startServer(t, Options{FlushWindow: -1})
	c := dialT(t, sock, "alice")
	defer c.Close()
	_, elems := setupCoupling(t, c)

	payload := make([]float64, elems)
	for i := range payload {
		payload[i] = float64(3*i - 7)
	}
	st, err := c.MovePayload(1, OpMove, payload, true)
	if err != nil {
		t.Fatalf("payload move: %v", err)
	}
	if len(st.Data) != elems {
		t.Fatalf("returned %d values, want %d", len(st.Data), elems)
	}
	for i := range payload {
		if st.Data[i] != payload[i] {
			t.Fatalf("element %d: landed %v, want %v", i, st.Data[i], payload[i])
		}
	}

	st, err = c.MoveData(1, OpMove, 55)
	if err != nil {
		t.Fatalf("seeded move: %v", err)
	}
	for i := 0; i < elems; i++ {
		if want := fillValue(55, i, 0); st.Data[i] != want {
			t.Fatalf("element %d: landed %v, want fillValue %v", i, st.Data[i], want)
		}
	}
}

// TestServeMultiWordCollection moves a pC++ collection of 2-word
// elements between process counts and checks every word.
func TestServeMultiWordCollection(t *testing.T) {
	_, sock := startServer(t, Options{FlushWindow: -1})
	c := dialT(t, sock, "alice")
	defer c.Close()
	src := DistSpec{Library: "pcxxrt", Layout: "roundrobin", Shape: []int{30}, Procs: 3, ElemWords: 2}
	dst := DistSpec{Library: "pcxxrt", Layout: "roundrobin", Shape: []int{30}, Procs: 2, ElemWords: 2}
	if err := c.RegisterDist(1, src); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterDist(2, dst); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.OpenCoupling(1, 1, 2); err != nil {
		t.Fatal(err)
	}
	st, err := c.MoveData(1, OpMove, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Data) != 60 {
		t.Fatalf("returned %d scalars, want 60", len(st.Data))
	}
	for i := 0; i < 30; i++ {
		for wd := 0; wd < 2; wd++ {
			if got, want := st.Data[i*2+wd], fillValue(9, i, wd); got != want {
				t.Fatalf("element %d word %d: %v, want %v", i, wd, got, want)
			}
		}
	}
}

// TestServeTwoTenantsShareSchedules is the amortization claim: the
// second tenant declaring the same distribution pair opens warm, the
// daemon's hit rate goes positive, and concurrent traffic from both
// tenants stays bit-stable per tenant.
func TestServeTwoTenantsShareSchedules(t *testing.T) {
	srv, sock := startServer(t, Options{FlushWindow: 500 * time.Microsecond})
	a := dialT(t, sock, "alice")
	defer a.Close()
	b := dialT(t, sock, "bob")
	defer b.Close()

	warmA, _ := setupCoupling(t, a)
	if warmA {
		t.Error("alice's open should build cold")
	}
	warmB, _ := setupCoupling(t, b)
	if !warmB {
		t.Error("bob's open of the same pair should hit alice's schedule")
	}

	// Both tenants stream the same seeds concurrently; the batched,
	// multiplexed execution must give each the same answers.
	const moves = 6
	hashes := make([][]uint64, 2)
	var wg sync.WaitGroup
	for i, c := range []*Client{a, b} {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			for m := 0; m < moves; m++ {
				st, err := c.Move(1, OpMove, int64(100+m))
				if err != nil {
					t.Errorf("tenant %d move %d: %v", i, m, err)
					return
				}
				hashes[i] = append(hashes[i], st.Hash)
			}
		}(i, c)
	}
	wg.Wait()
	for m := 0; m < moves; m++ {
		if hashes[0][m] != hashes[1][m] {
			t.Errorf("move %d: alice %016x != bob %016x", m, hashes[0][m], hashes[1][m])
		}
	}

	stats := srv.Stats()
	if stats["serve_cache_hit_rate"] <= 0 {
		t.Errorf("cache hit rate %v, want > 0", stats["serve_cache_hit_rate"])
	}
	if stats["serve_opens_total"] != 2 || stats["serve_open_warm_total"] != 1 {
		t.Errorf("opens=%v warm=%v, want 2/1", stats["serve_opens_total"], stats["serve_open_warm_total"])
	}
	if stats["serve_moves_total"] != 2*moves {
		t.Errorf("moves=%v, want %d", stats["serve_moves_total"], 2*moves)
	}
	if stats["serve_worlds"] != 1 {
		t.Errorf("worlds=%v, want 1 shared resident world", stats["serve_worlds"])
	}

	// The same stats are readable over the wire.
	wire, err := a.Stats()
	if err != nil {
		t.Fatalf("client stats: %v", err)
	}
	if wire["serve_cache_hit_rate"] <= 0 {
		t.Error("wire stats lost the hit rate")
	}
}

// TestServeBackpressure pins admission control: with no in-flight
// budget every move is refused with the typed error, the session
// survives, and nothing hangs.
func TestServeBackpressure(t *testing.T) {
	// A negative MaxInflight survives withDefaults and admits nothing.
	srv, sock := startServer(t, Options{MaxInflight: -1})
	c := dialT(t, sock, "alice")
	defer c.Close()
	setupCoupling(t, c)
	_, err := c.Move(1, OpMove, 1)
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("move with zero budget: %v, want ErrBackpressure", err)
	}
	// The session is still healthy: stats and close work.
	if _, err := c.Stats(); err != nil {
		t.Errorf("stats after backpressure: %v", err)
	}
	if srv.Stats()["serve_backpressure_total"] < 1 {
		t.Error("backpressure was not counted")
	}
}

// TestServeSessionLimit pins connection admission: the daemon refuses
// tenant N+1 with the typed error and keeps serving tenant N.
func TestServeSessionLimit(t *testing.T) {
	_, sock := startServer(t, Options{MaxSessions: 1})
	a := dialT(t, sock, "alice")
	defer a.Close()
	if _, err := Dial("unix", sock, "bob"); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("second session: %v, want ErrSessionLimit", err)
	}
	if _, _, err := a.OpenCoupling(9, 9, 9); !errors.Is(err, ErrUnknownDist) {
		t.Errorf("first session no longer serving: %v", err)
	}
}

// TestServeTypedErrors walks the request-validation surface.
func TestServeTypedErrors(t *testing.T) {
	_, sock := startServer(t, Options{MaxProcs: 4})
	c := dialT(t, sock, "alice")
	defer c.Close()

	bad := DistSpec{Library: "hpfrt", Layout: "spiral", Shape: []int{8}, Procs: 2}
	if err := c.RegisterDist(1, bad); !errors.Is(err, ErrBadSpec) {
		t.Errorf("bad layout: %v, want ErrBadSpec", err)
	}
	big := DistSpec{Library: "hpfrt", Layout: "blockvec", Shape: []int{64}, Procs: 7}
	if err := c.RegisterDist(1, big); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized procs: %v, want ErrTooLarge", err)
	}
	if _, _, err := c.OpenCoupling(1, 1, 2); !errors.Is(err, ErrUnknownDist) {
		t.Errorf("unregistered dists: %v, want ErrUnknownDist", err)
	}
	if _, err := c.Move(5, OpMove, 1); !errors.Is(err, ErrUnknownCoupling) {
		t.Errorf("unopened coupling: %v, want ErrUnknownCoupling", err)
	}
	if err := c.CloseCoupling(5); !errors.Is(err, ErrUnknownCoupling) {
		t.Errorf("closing unopened coupling: %v, want ErrUnknownCoupling", err)
	}

	src, dst := testSpecs()
	if err := c.RegisterDist(1, src); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterDist(2, dst); err != nil {
		t.Fatal(err)
	}
	short := DistSpec{Library: "hpfrt", Layout: "blockvec", Shape: []int{30}, Procs: 2}
	if err := c.RegisterDist(3, short); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.OpenCoupling(1, 1, 3); !errors.Is(err, ErrBadSpec) {
		t.Errorf("mismatched pair: %v, want ErrBadSpec", err)
	}
	if _, _, err := c.OpenCoupling(1, 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.OpenCoupling(1, 1, 2); !errors.Is(err, ErrBadSpec) {
		t.Errorf("reopening a live coupling id: %v, want ErrBadSpec", err)
	}
	if _, err := c.MovePayload(1, OpMove, []float64{1, 2, 3}, false); !errors.Is(err, ErrBadSpec) {
		t.Errorf("short payload: %v, want ErrBadSpec", err)
	}
}

// TestServeTCP runs the same coupling over a TCP loopback socket.
func TestServeTCP(t *testing.T) {
	srv := NewServer(Options{FlushWindow: -1})
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe("tcp", "127.0.0.1:0") }()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Addr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("server did not start listening")
		}
		time.Sleep(time.Millisecond)
	}
	defer func() {
		srv.Close()
		if err := <-errc; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	c, err := Dial("tcp", srv.Addr().String(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	setupCoupling(t, c)
	st, err := c.Move(1, OpMove, 5)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := testSpecs()
	ref, err := Standalone(src, dst, []ScriptOp{{Kind: OpMove, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Hash != ref[0].Hash {
		t.Errorf("TCP hash %016x != standalone %016x", st.Hash, ref[0].Hash)
	}
}

// TestServeChurnReopens pins session churn: close/reopen cycles reuse
// the cached schedule (warm open) and fresh objects (a MoveAdd after
// reopen starts from zeroed storage).
func TestServeChurnReopens(t *testing.T) {
	_, sock := startServer(t, Options{FlushWindow: -1})
	c := dialT(t, sock, "alice")
	defer c.Close()
	setupCoupling(t, c)
	st1, err := c.Move(1, OpMoveAdd, 77)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.Move(1, OpMoveAdd, 77)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Hash == st2.Hash {
		t.Error("second MoveAdd should accumulate, not repeat")
	}
	if err := c.CloseCoupling(1); err != nil {
		t.Fatal(err)
	}
	warm, _, err := c.OpenCoupling(1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !warm {
		t.Error("reopen after close should be warm")
	}
	st3, err := c.Move(1, OpMoveAdd, 77)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Hash != st1.Hash {
		t.Errorf("MoveAdd on a reopened coupling %016x, want fresh-storage hash %016x", st3.Hash, st1.Hash)
	}
}

// TestStandaloneValidates covers the reference executor's own input
// checking.
func TestStandaloneValidates(t *testing.T) {
	src, _ := testSpecs()
	bad := DistSpec{Library: "hpfrt", Layout: "blockvec", Shape: []int{61}, Procs: 2}
	if _, err := Standalone(src, bad, nil); !errors.Is(err, ErrBadSpec) {
		t.Errorf("mismatched standalone pair: %v, want ErrBadSpec", err)
	}
}

// TestServeManyTenants floods the daemon with more concurrent tenants
// than worlds, mixing pairs, verifying every hash against standalone.
func TestServeManyTenants(t *testing.T) {
	srv, sock := startServer(t, Options{FlushWindow: time.Millisecond})
	pairs := [][2]DistSpec{}
	{
		s, d := testSpecs()
		pairs = append(pairs, [2]DistSpec{s, d})
	}
	// A different process shape than testSpecs' 3->2, so the daemon
	// must host a second resident world.
	pairs = append(pairs, [2]DistSpec{
		{Library: "mbparti", Layout: "block2d", Shape: []int{8, 8}, Procs: 4},
		{Library: "hpfrt", Layout: "rowblock", Shape: []int{8, 8}, Procs: 2},
	})

	const tenants = 4
	const moves = 4
	type result struct {
		pair   int
		hashes []uint64
		err    error
	}
	results := make([]result, tenants)
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := i % len(pairs)
			results[i].pair = p
			c, err := Dial("unix", sock, fmt.Sprintf("tenant-%d", i))
			if err != nil {
				results[i].err = err
				return
			}
			defer c.Close()
			if err := c.RegisterDist(1, pairs[p][0]); err != nil {
				results[i].err = err
				return
			}
			if err := c.RegisterDist(2, pairs[p][1]); err != nil {
				results[i].err = err
				return
			}
			if _, _, err := c.OpenCoupling(1, 1, 2); err != nil {
				results[i].err = err
				return
			}
			for m := 0; m < moves; m++ {
				st, err := c.Move(1, OpMove, int64(m))
				if err != nil {
					results[i].err = err
					return
				}
				results[i].hashes = append(results[i].hashes, st.Hash)
			}
		}(i)
	}
	wg.Wait()

	ops := make([]ScriptOp, moves)
	for m := range ops {
		ops[m] = ScriptOp{Kind: OpMove, Seed: int64(m)}
	}
	for p := range pairs {
		ref, err := Standalone(pairs[p][0], pairs[p][1], ops)
		if err != nil {
			t.Fatalf("standalone pair %d: %v", p, err)
		}
		for i := range results {
			if results[i].err != nil {
				t.Fatalf("tenant %d: %v", i, results[i].err)
			}
			if results[i].pair != p {
				continue
			}
			for m := range ref {
				if results[i].hashes[m] != ref[m].Hash {
					t.Errorf("tenant %d move %d: %016x != standalone %016x",
						i, m, results[i].hashes[m], ref[m].Hash)
				}
			}
		}
	}
	if w := srv.Stats()["serve_worlds"]; w != 2 {
		t.Errorf("worlds=%v, want 2 (one per coupling shape)", w)
	}
}

// TestServeDonorRepairSharesSchedules pins the descriptor-level
// sharing path: blockvec(4096) and rowblock(64×64) over the same
// process count have identical linearized placement, so once the first
// pair's open has registered a donor schedule with routes, the second
// pair's route map diffs against it to a zero delta and the open is
// served by patching the donor locally — no collective inspector —
// while its moves stay bit-identical to a standalone cold build of the
// same pair.
func TestServeDonorRepairSharesSchedules(t *testing.T) {
	srv, sock := startServer(t, Options{FlushWindow: -1})
	c := dialT(t, sock, "alice")
	defer c.Close()

	pairA := [2]DistSpec{
		{Library: "hpfrt", Layout: "blockvec", Shape: []int{4096}, Procs: 2},
		{Library: "mbparti", Layout: "blockvec", Shape: []int{4096}, Procs: 2},
	}
	pairB := [2]DistSpec{
		{Library: "hpfrt", Layout: "rowblock", Shape: []int{64, 64}, Procs: 2},
		{Library: "mbparti", Layout: "blockvec", Shape: []int{4096}, Procs: 2},
	}
	for i, spec := range []DistSpec{pairA[0], pairA[1], pairB[0], pairB[1]} {
		if err := c.RegisterDist(i+1, spec); err != nil {
			t.Fatalf("register %d: %v", i+1, err)
		}
	}
	if _, _, err := c.OpenCoupling(1, 1, 2); err != nil {
		t.Fatalf("open donor pair: %v", err)
	}
	warm, _, err := c.OpenCoupling(2, 3, 4)
	if err != nil {
		t.Fatalf("open repaired pair: %v", err)
	}
	if warm {
		t.Error("a distinct pair key should not report a cache hit")
	}
	st := srv.Stats()
	if st["serve_open_repaired_total"] != 1 {
		t.Errorf("repaired opens = %v, want 1", st["serve_open_repaired_total"])
	}

	ops := []ScriptOp{{Kind: OpMove, Seed: 3}, {Kind: OpMoveAdd, Seed: 5}, {Kind: OpMoveReverse, Seed: 7}}
	ref, err := Standalone(pairB[0], pairB[1], ops)
	if err != nil {
		t.Fatalf("standalone: %v", err)
	}
	for i, so := range ops {
		got, err := c.Move(2, so.Kind, so.Seed)
		if err != nil {
			t.Fatalf("move %d: %v", i, err)
		}
		if got.Hash != ref[i].Hash {
			t.Errorf("move %d: repaired-schedule hash %016x != standalone %016x", i, got.Hash, ref[i].Hash)
		}
	}
}
