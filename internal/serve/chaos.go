package serve

import (
	"errors"
	"net"
	"time"

	"metachaos/internal/faultsim"
)

// Wire-level chaos: a net.Conn wrapper that injects the failures a
// real network inflicts on the service protocol — connections cut
// between frames, writes torn mid-frame, reads abandoned after the
// request was delivered (so the op applied but the reply is lost,
// exercising the dedup path), and stalls.  Every decision is a pure
// hash of (seed, connection ordinal, I/O ordinal) via faultsim's
// splitmix mixer, so a failing run replays exactly from its seed.

// ChaosConfig tunes the fault mix.  Rates are per-I/O probabilities in
// [0, 1]; the zero value injects nothing.
type ChaosConfig struct {
	// Seed drives every decision deterministically.
	Seed uint64
	// DropRate closes the connection instead of writing (the frame is
	// never sent).
	DropRate float64
	// TruncateRate writes a strict prefix of the frame and then closes
	// the connection (the peer sees a torn frame).
	TruncateRate float64
	// ReadAbortRate closes the connection instead of reading — the
	// request usually reached the server, so its reply is lost after
	// the op applied.
	ReadAbortRate float64
	// StallRate sleeps Stall (real time) before the I/O proceeds.
	StallRate float64
	// Stall is the injected delay for StallRate hits.
	Stall time.Duration
}

// errChaos is the injected fault surfaced to the caller; the client
// treats it like any other connection failure (reconnect + retry).
var errChaos = errors.New("serve: chaos-injected connection fault")

// Per-I/O decision streams (the faultsim stream argument).
const (
	chaosStreamWrite = 1
	chaosStreamRead  = 2
)

// chaosConn wraps a connection with seeded fault injection.  It is
// used from one goroutine (Client serializes I/O), so the counters
// need no locking.
type chaosConn struct {
	net.Conn
	cfg     ChaosConfig
	ordinal uint64 // which connection of the client's lifetime this is
	writes  uint64
	reads   uint64
}

// newChaosConn wraps conn; ordinal distinguishes successive
// connections of one client so each redial sees fresh decisions.
func newChaosConn(conn net.Conn, cfg ChaosConfig, ordinal uint64) net.Conn {
	return &chaosConn{Conn: conn, cfg: cfg, ordinal: ordinal}
}

// roll returns the deterministic unit variate for this I/O.
func (c *chaosConn) roll(stream, k, salt uint64) float64 {
	return faultsim.Unit(c.cfg.Seed+salt, c.ordinal*8+stream, k)
}

func (c *chaosConn) Write(b []byte) (int, error) {
	k := c.writes
	c.writes++
	if c.cfg.StallRate > 0 && c.roll(chaosStreamWrite, k, 101) < c.cfg.StallRate {
		time.Sleep(c.cfg.Stall)
	}
	if c.cfg.DropRate > 0 && c.roll(chaosStreamWrite, k, 211) < c.cfg.DropRate {
		c.Conn.Close()
		return 0, errChaos
	}
	if c.cfg.TruncateRate > 0 && len(b) > 1 &&
		c.roll(chaosStreamWrite, k, 307) < c.cfg.TruncateRate {
		// A torn write must kill the connection: leaving it open would
		// desynchronize framing for every later request.
		cut := 1 + int(c.roll(chaosStreamWrite, k, 401)*float64(len(b)-1))
		n, _ := c.Conn.Write(b[:cut])
		c.Conn.Close()
		return n, errChaos
	}
	return c.Conn.Write(b)
}

func (c *chaosConn) Read(b []byte) (int, error) {
	k := c.reads
	c.reads++
	if c.cfg.StallRate > 0 && c.roll(chaosStreamRead, k, 101) < c.cfg.StallRate {
		time.Sleep(c.cfg.Stall)
	}
	if c.cfg.ReadAbortRate > 0 && c.roll(chaosStreamRead, k, 211) < c.cfg.ReadAbortRate {
		c.Conn.Close()
		return 0, errChaos
	}
	return c.Conn.Read(b)
}
