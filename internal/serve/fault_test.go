package serve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"metachaos/internal/codec"
)

// panicOnce returns a WorldPanic hook whose first incarnation dies at
// its b'th command batch; respawned incarnations run clean.
func panicOnce(b int) func(int, int, int) int {
	return func(_, _, inc int) int {
		if inc == 0 {
			return b
		}
		return 0
	}
}

// waitStat polls the daemon's stats until pred holds or a timeout.
func waitStat(t *testing.T, srv *Server, what string, pred func(map[string]float64) bool) map[string]float64 {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var st map[string]float64
	for time.Now().Before(deadline) {
		st = srv.Stats()
		if pred(st) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; stats %v", what, st)
	return nil
}

// dropWire simulates abrupt client death or a cut cable: the socket
// closes with no Bye and no coupling teardown.
func dropWire(c *Client) {
	c.mu.Lock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.mu.Unlock()
}

// TestServeWorldRespawnReplays is the journaling tentpole without wire
// faults: an injected world panic lands mid-move-stream, the server
// respawns the world from the coupling's journal, the client's
// transparent ErrRetryable resend completes, and every hash — crossing
// the respawn with MoveAdd state accumulated before it — stays
// bit-identical to Standalone.
func TestServeWorldRespawnReplays(t *testing.T) {
	srv, sock := startServer(t, Options{FlushWindow: -1, WorldPanic: panicOnce(5)})
	c := dialT(t, sock, "alice")
	defer c.Close()
	setupCoupling(t, c)

	kinds := []int{OpMove, OpMoveAdd, OpMoveAdd, OpMove, OpMoveReverse, OpMoveAdd, OpMove}
	var script []ScriptOp
	var got []uint64
	for i, k := range kinds {
		st, err := c.Move(1, k, int64(100+i))
		if err != nil {
			t.Fatalf("move %d: %v", i, err)
		}
		got = append(got, st.Hash)
		script = append(script, ScriptOp{Kind: k, Seed: int64(100 + i)})
	}

	src, dst := testSpecs()
	want, err := Standalone(src, dst, script)
	if err != nil {
		t.Fatalf("standalone: %v", err)
	}
	for i := range want {
		if got[i] != want[i].Hash {
			t.Errorf("move %d: hash %#x through the respawned daemon, standalone %#x", i, got[i], want[i].Hash)
		}
	}

	stats := srv.Stats()
	if stats["serve_world_respawns"] < 1 {
		t.Errorf("serve_world_respawns = %v, want >= 1", stats["serve_world_respawns"])
	}
	if stats["serve_ops_replayed"] < 1 {
		t.Errorf("serve_ops_replayed = %v, want >= 1", stats["serve_ops_replayed"])
	}
	if stats["serve_retryable_total"] < 1 {
		t.Errorf("serve_retryable_total = %v, want >= 1", stats["serve_retryable_total"])
	}
	if c.Retries() < 1 {
		t.Errorf("client retries = %d, want >= 1", c.Retries())
	}
	if stats["serve_replay_mismatch_total"] != 0 {
		t.Errorf("serve_replay_mismatch_total = %v, want 0", stats["serve_replay_mismatch_total"])
	}
}

// TestServeChaosEndToEnd is the pinned-seed acceptance run: three
// tenants drive moves through seeded wire chaos (drops, torn writes,
// lost replies, stalls) while the first world incarnation is rigged to
// panic.  Every tenant's full hash sequence must come out bit-identical
// to its Standalone replay, with at least one world respawn and at
// least one client reconnect observed.
func TestServeChaosEndToEnd(t *testing.T) {
	srv, sock := startServer(t, Options{FlushWindow: -1, WorldPanic: panicOnce(7)})
	src, dst := testSpecs()

	const tenants = 3
	const movesPer = 10
	kinds := []int{OpMove, OpMoveAdd, OpMoveAdd, OpMoveReverse, OpMove}

	clients := make([]*Client, tenants)
	for i := range clients {
		c, err := DialWith(DialOptions{
			Network: "unix", Addr: sock, Tenant: fmt.Sprintf("tenant-%d", i),
			MaxAttempts: 16, Backoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond,
			Chaos: &ChaosConfig{
				Seed:          0xC0FFEE + uint64(i),
				DropRate:      0.06,
				TruncateRate:  0.05,
				ReadAbortRate: 0.06,
				StallRate:     0.05,
				Stall:         time.Millisecond,
			},
		})
		if err != nil {
			t.Fatalf("dial tenant %d: %v", i, err)
		}
		clients[i] = c
	}

	hashes := make([][]uint64, tenants)
	errs := make([]error, tenants)
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			if err := c.RegisterDist(1, src); err != nil {
				errs[i] = fmt.Errorf("register src: %w", err)
				return
			}
			if err := c.RegisterDist(2, dst); err != nil {
				errs[i] = fmt.Errorf("register dst: %w", err)
				return
			}
			if _, _, err := c.OpenCoupling(1, 1, 2); err != nil {
				errs[i] = fmt.Errorf("open: %w", err)
				return
			}
			for m := 0; m < movesPer; m++ {
				st, err := c.Move(1, kinds[m%len(kinds)], int64(1000*i+m))
				if err != nil {
					errs[i] = fmt.Errorf("move %d: %w", m, err)
					return
				}
				hashes[i] = append(hashes[i], st.Hash)
			}
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tenant %d: %v", i, err)
		}
	}

	reconnects := 0
	for i, c := range clients {
		var script []ScriptOp
		for m := 0; m < movesPer; m++ {
			script = append(script, ScriptOp{Kind: kinds[m%len(kinds)], Seed: int64(1000*i + m)})
		}
		want, err := Standalone(src, dst, script)
		if err != nil {
			t.Fatalf("standalone %d: %v", i, err)
		}
		for m := range want {
			if hashes[i][m] != want[m].Hash {
				t.Errorf("tenant %d move %d: hash %#x under chaos, standalone %#x",
					i, m, hashes[i][m], want[m].Hash)
			}
		}
		reconnects += c.Reconnects()
		c.Close()
	}

	stats := srv.Stats()
	if stats["serve_world_respawns"] < 1 {
		t.Errorf("serve_world_respawns = %v, want >= 1", stats["serve_world_respawns"])
	}
	if reconnects < 1 {
		t.Errorf("total client reconnects = %d, want >= 1", reconnects)
	}
	if stats["serve_replay_mismatch_total"] != 0 {
		t.Errorf("serve_replay_mismatch_total = %v, want 0", stats["serve_replay_mismatch_total"])
	}
	t.Logf("chaos run: %d reconnects, %.0f respawns, %.0f ops replayed, %.0f dedup replies, %.0f resumes",
		reconnects, stats["serve_world_respawns"], stats["serve_ops_replayed"],
		stats["serve_dedup_replies_total"], stats["serve_resumes_total"])
}

// TestServeLeaseExpiryReclaims is the leak test: a tenant that
// vanishes mid-session (open coupling, no Bye) must be fully reclaimed
// by lease expiry — session slot, in-flight budget and couplings all
// return to zero, and the freed slot admits the next tenant.
func TestServeLeaseExpiryReclaims(t *testing.T) {
	srv, sock := startServer(t, Options{FlushWindow: -1, Lease: 60 * time.Millisecond, MaxSessions: 1})
	c := dialT(t, sock, "ghost")
	setupCoupling(t, c)
	if _, err := c.Move(1, OpMove, 7); err != nil {
		t.Fatalf("move: %v", err)
	}
	dropWire(c)

	waitStat(t, srv, "lease expiry to reclaim the session", func(m map[string]float64) bool {
		return m["serve_lease_expired"] >= 1 && m["serve_sessions"] == 0 && m["serve_inflight"] == 0
	})

	// The slot is free again: with MaxSessions=1 this dial only works if
	// the ghost's lease actually released it.
	c2 := dialT(t, sock, "next")
	defer c2.Close()
	if err := c2.Ping(); err != nil {
		t.Fatalf("ping on reclaimed slot: %v", err)
	}

	// The ghost's session is gone for good: its next request reconnects,
	// tries to resume, and gets the typed refusal.
	if _, err := c.Move(1, OpMove, 8); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("move after expiry: err = %v, want ErrUnknownSession", err)
	}
}

// TestServeReconnectResume covers client hardening without chaos: the
// wire drops abruptly mid-session, the next request transparently
// redials and resumes by token, and MoveAdd state accumulated before
// the drop is still there — proof the same leased session carried over.
func TestServeReconnectResume(t *testing.T) {
	srv, sock := startServer(t, Options{FlushWindow: -1})
	c := dialT(t, sock, "flaky")
	defer c.Close()
	setupCoupling(t, c)

	var script []ScriptOp
	var got []uint64
	mv := func(i int) {
		st, err := c.Move(1, OpMoveAdd, int64(i))
		if err != nil {
			t.Fatalf("move %d: %v", i, err)
		}
		got = append(got, st.Hash)
		script = append(script, ScriptOp{Kind: OpMoveAdd, Seed: int64(i)})
	}
	for i := 0; i < 3; i++ {
		mv(i)
	}
	dropWire(c)
	for i := 3; i < 6; i++ {
		mv(i)
	}
	if c.Reconnects() != 1 {
		t.Errorf("reconnects = %d, want 1", c.Reconnects())
	}

	src, dst := testSpecs()
	want, err := Standalone(src, dst, script)
	if err != nil {
		t.Fatalf("standalone: %v", err)
	}
	for i := range want {
		if got[i] != want[i].Hash {
			t.Errorf("move %d: hash %#x across reconnect, standalone %#x", i, got[i], want[i].Hash)
		}
	}
	if st := srv.Stats(); st["serve_resumes_total"] < 1 {
		t.Errorf("serve_resumes_total = %v, want >= 1", st["serve_resumes_total"])
	}
}

// rawHello speaks the wire protocol by hand and returns the session
// token the server granted.
func rawHello(t *testing.T, conn net.Conn, tenant, resume string, id uint32) string {
	t.Helper()
	var w codec.Writer
	w.PutString(tenant)
	w.PutInt32(protoVersion)
	w.PutString(resume)
	rtyp, rp := rawReq(t, conn, msgHello, id, w.Bytes())
	if rtyp != msgWelcome {
		t.Fatalf("hello answered %d: %s", rtyp, decodeError(rp))
	}
	r := codec.NewReader(rp)
	r.Int32()      // version
	_ = r.String() // server
	_ = r.String() // machine
	tok := r.String()
	r.Int64() // lease ms
	return tok
}

// rawReq writes one frame and reads the matching reply.
func rawReq(t *testing.T, conn net.Conn, typ byte, id uint32, payload []byte) (byte, []byte) {
	t.Helper()
	if err := writeFrame(conn, typ, id, payload); err != nil {
		t.Fatalf("write frame %d: %v", typ, err)
	}
	rtyp, rid, rp, err := readFrame(conn, DefaultMaxFrame)
	if err != nil {
		t.Fatalf("read reply to %d: %v", typ, err)
	}
	if rid != id {
		t.Fatalf("reply id %d for request %d", rid, id)
	}
	return rtyp, rp
}

// TestServeRetryDedup drives the dedup contract directly over raw
// frames: resending the last mutating op's id after a reconnect must
// answer from the cache — same bytes, no re-execution.
func TestServeRetryDedup(t *testing.T) {
	srv, sock := startServer(t, Options{FlushWindow: -1})
	src, dst := testSpecs()

	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	tok := rawHello(t, conn, "manual", "", 1)

	var w codec.Writer
	w.PutInt32(1)
	putSpec(&w, &src)
	if rtyp, _ := rawReq(t, conn, msgRegisterDist, 2, w.Bytes()); rtyp != msgOK {
		t.Fatalf("register src answered %d", rtyp)
	}
	w = codec.Writer{}
	w.PutInt32(2)
	putSpec(&w, &dst)
	if rtyp, _ := rawReq(t, conn, msgRegisterDist, 3, w.Bytes()); rtyp != msgOK {
		t.Fatalf("register dst answered %d", rtyp)
	}
	w = codec.Writer{}
	w.PutInt32(1)
	w.PutInt32(1)
	w.PutInt32(2)
	if rtyp, _ := rawReq(t, conn, msgOpenCoupling, 4, w.Bytes()); rtyp != msgCouplingReady {
		t.Fatalf("open answered %d", rtyp)
	}

	movePayload := func() []byte {
		var w codec.Writer
		w.PutInt32(1)
		w.PutInt32(int32(OpMoveAdd))
		w.PutInt64(42)
		w.PutInt32(0)
		return w.Bytes()
	}
	rtyp, first := rawReq(t, conn, msgMove, 5, movePayload())
	if rtyp != msgMoveDone {
		t.Fatalf("move answered %d", rtyp)
	}

	// "Lose" the reply: reconnect and resend the identical request id.
	conn.Close()
	conn2, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatalf("redial: %v", err)
	}
	defer conn2.Close()
	rawHello(t, conn2, "manual", tok, 6)
	rtyp, second := rawReq(t, conn2, msgMove, 5, movePayload())
	if rtyp != msgMoveDone {
		t.Fatalf("retried move answered %d", rtyp)
	}
	if string(first) != string(second) {
		t.Fatalf("retried move reply differs from the original")
	}

	stats := srv.Stats()
	if stats["serve_moves_total"] != 1 {
		t.Errorf("serve_moves_total = %v, want 1 (retry must not re-execute)", stats["serve_moves_total"])
	}
	if stats["serve_dedup_replies_total"] != 1 {
		t.Errorf("serve_dedup_replies_total = %v, want 1", stats["serve_dedup_replies_total"])
	}

	// A fresh id executes normally again.
	if rtyp, _ := rawReq(t, conn2, msgMove, 7, movePayload()); rtyp != msgMoveDone {
		t.Fatalf("fresh move answered %d", rtyp)
	}
	if got := srv.Stats()["serve_moves_total"]; got != 2 {
		t.Errorf("serve_moves_total after fresh id = %v, want 2", got)
	}
}

// TestServePingKeepsLeaseAlive: pings alone hold a session past many
// lease intervals; silence lets it expire, after which resume is
// refused with the typed error.
func TestServePingKeepsLeaseAlive(t *testing.T) {
	srv, sock := startServer(t, Options{FlushWindow: -1, Lease: 300 * time.Millisecond})
	c := dialT(t, sock, "pinger")
	for i := 0; i < 8; i++ {
		time.Sleep(50 * time.Millisecond)
		if err := c.Ping(); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
	if st := srv.Stats(); st["serve_lease_expired"] != 0 {
		t.Fatalf("lease expired despite pings: %v", st["serve_lease_expired"])
	}
	// Go silent; the sweeper reclaims the session and closes our conn.
	waitStat(t, srv, "idle lease expiry", func(m map[string]float64) bool {
		return m["serve_lease_expired"] >= 1 && m["serve_sessions"] == 0
	})
	if err := c.Ping(); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("ping after expiry: err = %v, want ErrUnknownSession", err)
	}
}

// TestServeJournalOverflowBreaksCoupling: past MaxJournal a coupling
// keeps serving but cannot survive a world death; after the respawn it
// reports terminal ErrWorldFailed, while a freshly opened coupling on
// the respawned world works.
func TestServeJournalOverflowBreaksCoupling(t *testing.T) {
	srv, sock := startServer(t, Options{FlushWindow: -1, MaxJournal: 2, WorldPanic: panicOnce(6)})
	c := dialT(t, sock, "spill")
	defer c.Close()
	setupCoupling(t, c) // batch 1

	for i := 0; i < 4; i++ { // batches 2-5; journal overflows at the 3rd move
		if _, err := c.Move(1, OpMove, int64(i)); err != nil {
			t.Fatalf("move %d: %v", i, err)
		}
	}
	// Batch 6 dies; the journal is gone, so the retry finds the coupling
	// broken and surfaces the terminal error.
	if _, err := c.Move(1, OpMove, 99); !errors.Is(err, ErrWorldFailed) {
		t.Fatalf("move on unrecoverable coupling: err = %v, want ErrWorldFailed", err)
	}
	stats := srv.Stats()
	if stats["serve_journal_overflow_total"] < 1 {
		t.Errorf("serve_journal_overflow_total = %v, want >= 1", stats["serve_journal_overflow_total"])
	}
	if stats["serve_replay_unrecoverable_total"] < 1 {
		t.Errorf("serve_replay_unrecoverable_total = %v, want >= 1", stats["serve_replay_unrecoverable_total"])
	}

	// The session recovers by discarding the broken coupling and
	// reopening on the respawned world.
	if err := c.CloseCoupling(1); err != nil {
		t.Fatalf("close broken coupling: %v", err)
	}
	if _, _, err := c.OpenCoupling(1, 1, 2); err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, err := c.Move(1, OpMove, 1); err != nil {
		t.Fatalf("move on reopened coupling: %v", err)
	}
}

// TestServeCacheEviction: with a 1-entry per-rank schedule cache, two
// alternating coupling shapes evict each other, the daemon reports the
// evictions, and correctness is untouched (evicted schedules rebuild).
func TestServeCacheEviction(t *testing.T) {
	srv, sock := startServer(t, Options{FlushWindow: -1, CacheEntries: 1})
	c := dialT(t, sock, "churner")
	defer c.Close()
	srcA, dstA := testSpecs()
	srcB, dstB := srcA, dstA
	srcB.Shape = []int{120}
	dstB.Shape = []int{120}
	for _, reg := range []struct {
		id   int
		spec DistSpec
	}{{1, srcA}, {2, dstA}, {3, srcB}, {4, dstB}} {
		if err := c.RegisterDist(reg.id, reg.spec); err != nil {
			t.Fatalf("register %d: %v", reg.id, err)
		}
	}
	for round := 0; round < 3; round++ {
		for pair := 0; pair < 2; pair++ {
			id := 10 + pair
			if _, _, err := c.OpenCoupling(id, 1+2*pair, 2+2*pair); err != nil {
				t.Fatalf("round %d open %d: %v", round, id, err)
			}
			if _, err := c.Move(id, OpMove, int64(round)); err != nil {
				t.Fatalf("round %d move %d: %v", round, id, err)
			}
			if err := c.CloseCoupling(id); err != nil {
				t.Fatalf("round %d close %d: %v", round, id, err)
			}
		}
	}
	stats := srv.Stats()
	if stats["serve_cache_evictions"] < 1 {
		t.Errorf("serve_cache_evictions = %v, want >= 1", stats["serve_cache_evictions"])
	}
}

// TestServeShardedResidentWorld stands up a soak-scale resident world
// (256 union ranks, which auto-shards the scheduler) and checks the
// daemon path against Standalone — the property the nightly soak
// gates.  The world is big, so it is skipped in -short runs.
func TestServeShardedResidentWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("256-rank resident world is too heavy for -short")
	}
	_, sock := startServer(t, Options{FlushWindow: -1, MaxProcs: 160})
	c := dialT(t, sock, "bulk")
	defer c.Close()
	src := DistSpec{Library: "hpfrt", Layout: "blockvec", Shape: []int{4096}, Procs: 160}
	dst := DistSpec{Library: "mbparti", Layout: "blockvec", Shape: []int{4096}, Procs: 96}
	if err := c.RegisterDist(1, src); err != nil {
		t.Fatalf("register src: %v", err)
	}
	if err := c.RegisterDist(2, dst); err != nil {
		t.Fatalf("register dst: %v", err)
	}
	if _, _, err := c.OpenCoupling(1, 1, 2); err != nil {
		t.Fatalf("open: %v", err)
	}
	var script []ScriptOp
	var got []uint64
	for i, k := range []int{OpMove, OpMoveAdd, OpMoveReverse} {
		st, err := c.Move(1, k, int64(i))
		if err != nil {
			t.Fatalf("move %d: %v", i, err)
		}
		got = append(got, st.Hash)
		script = append(script, ScriptOp{Kind: k, Seed: int64(i)})
	}
	want, err := Standalone(src, dst, script)
	if err != nil {
		t.Fatalf("standalone: %v", err)
	}
	for i := range want {
		if got[i] != want[i].Hash {
			t.Errorf("move %d: sharded daemon hash %#x, standalone %#x", i, got[i], want[i].Hash)
		}
	}
}
