package serve

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzFrameRoundTrip fuzzes the wire framing from both directions: a
// written frame must read back bit-identically, arbitrary bytes must
// never panic the reader or decode as anything but a typed ErrProtocol
// (or a clean EOF), and corrupting a valid frame's payload must trip
// the checksum.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(byte(0), uint32(0), []byte(nil), []byte(nil))
	f.Add(byte(1), uint32(1), []byte{}, []byte{0, 0, 0, 0})
	f.Add(msgMove, uint32(42), []byte{1, 2, 3, 4, 5}, []byte{13, 0, 0, 0, 2, 1, 0, 0, 0})
	f.Add(msgError, uint32(1<<31), bytes.Repeat([]byte{0xAB}, 300), []byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, typ byte, id uint32, payload, raw []byte) {
		// Write → read must be the identity.
		var buf bytes.Buffer
		if err := writeFrame(&buf, typ, id, payload); err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
		wire := append([]byte(nil), buf.Bytes()...)
		gtyp, gid, gp, err := readFrame(&buf, len(payload))
		if err != nil {
			t.Fatalf("readFrame of a written frame: %v", err)
		}
		if gtyp != typ || gid != id || !bytes.Equal(gp, payload) {
			t.Fatalf("round trip changed the frame: (%d,%d,%x) -> (%d,%d,%x)",
				typ, id, payload, gtyp, gid, gp)
		}

		// A flipped payload byte must be caught by the checksum (type and
		// id sit outside the checksummed region; the length field steers
		// framing and fails differently).
		if len(payload) > 0 {
			bad := append([]byte(nil), wire...)
			i := 9 + int(uint(id)%uint(len(payload)))
			bad[i] ^= 0x40
			if _, _, _, err := readFrame(bytes.NewReader(bad), len(payload)); !errors.Is(err, ErrProtocol) {
				t.Fatalf("corrupted payload byte %d decoded without ErrProtocol: %v", i, err)
			}
		}

		// Arbitrary bytes: the reader must return cleanly — io.EOF on an
		// empty stream, ErrProtocol on damage, or success in the
		// astronomically unlikely event the fuzzer forged a checksum.
		_, _, _, err = readFrame(bytes.NewReader(raw), 1<<16)
		if err != nil && err != io.EOF && !errors.Is(err, ErrProtocol) {
			t.Fatalf("raw bytes produced an untyped error: %v", err)
		}

		// A truncated valid frame (torn write) must be a typed error too.
		if cut := int(uint(id) % uint(len(wire))); cut > 0 {
			_, _, _, err := readFrame(bytes.NewReader(wire[:cut]), len(payload))
			if err == nil {
				t.Fatalf("torn frame (%d of %d bytes) decoded successfully", cut, len(wire))
			}
			if err != io.EOF && !errors.Is(err, ErrProtocol) {
				t.Fatalf("torn frame produced an untyped error: %v", err)
			}
		}
	})
}
