package serve

import (
	"errors"
	"fmt"

	"metachaos/internal/codec"
	"metachaos/internal/core"
)

// protoVersion is the wire protocol generation; Hello/Welcome agree on
// it before anything else flows.  Version 2 added session resume
// tokens, leases, ping, and the retryable error class.
const protoVersion = 2

// Message types.  Requests flow client → server; every request is
// answered by exactly one response frame carrying the same request id
// (msgError for failures).
const (
	msgHello         byte = 1  // c→s: tenant name, protocol version
	msgWelcome       byte = 2  // s→c: version, server name, machine name
	msgRegisterDist  byte = 3  // c→s: dist id, DistSpec
	msgOK            byte = 4  // s→c: generic ack
	msgOpenCoupling  byte = 5  // c→s: coupling id, src dist id, dst dist id
	msgCouplingReady byte = 6  // s→c: warm flag, element count
	msgMove          byte = 7  // c→s: coupling id, kind, seed, flags, [values]
	msgMoveDone      byte = 8  // s→c: result hash, elems, virtual cost, [values]
	msgCloseCoupling byte = 9  // c→s: coupling id
	msgStats         byte = 10 // c→s: empty
	msgStatsReply    byte = 11 // s→c: name/value pairs
	msgBye           byte = 12 // c→s: empty; server acks and closes
	msgError         byte = 13 // s→c: code, detail
	msgPing          byte = 14 // c→s: empty; refreshes the session lease
)

// Move kinds carried in msgMove.
const (
	OpMove        = 0 // copy source → destination
	OpMoveAdd     = 1 // accumulate source into destination
	OpMoveReverse = 2 // copy destination → source through the same schedule
)

// msgMove flags.
const (
	flagWantData   = 1 // return the moved side's global values in msgMoveDone
	flagHasPayload = 2 // explicit source values follow (else seed-derived fill)
)

// Error codes carried in msgError, mapped to the typed sentinels below
// so clients can errors.Is against them.
const (
	codeBackpressure = 1
	codeSessionLimit = 2
	codeUnknownDist  = 3
	codeUnknownCpl   = 4
	codeBadSpec      = 5
	codeTooLarge     = 6
	codeShutdown     = 7
	codeWorldFailed  = 8
	codeLimit        = 9
	codeRetryable    = 10
	codeUnknownSess  = 11
)

// Typed service errors.  The server picks the code; Client.do wraps
// the matching sentinel around the server's detail string, so
// errors.Is(err, serve.ErrBackpressure) works across the socket.
var (
	// ErrBackpressure is admission control declining a move because the
	// global in-flight limit is reached; the session is still healthy
	// and the client should retry after draining.
	ErrBackpressure = errors.New("serve: too many in-flight moves (backpressure)")
	// ErrSessionLimit is the accept loop declining a connection because
	// MaxSessions tenants are already connected.
	ErrSessionLimit = errors.New("serve: session limit reached")
	// ErrUnknownDist names a distribution id the session never registered.
	ErrUnknownDist = errors.New("serve: unknown distribution")
	// ErrUnknownCoupling names a coupling id the session never opened.
	ErrUnknownCoupling = errors.New("serve: unknown coupling")
	// ErrBadSpec rejects an invalid or unsupported distribution pair.
	ErrBadSpec = errors.New("serve: invalid distribution spec")
	// ErrTooLarge rejects a payload or world beyond the configured caps.
	ErrTooLarge = errors.New("serve: request exceeds configured limits")
	// ErrShuttingDown reports a request racing server shutdown.
	ErrShuttingDown = errors.New("serve: server is shutting down")
	// ErrWorldFailed reports that the resident world executing the
	// session's couplings died (a simulation panic); its couplings are
	// gone, though the session may open new ones on a fresh world.
	ErrWorldFailed = errors.New("serve: resident world failed")
	// ErrLimit rejects a session exceeding its per-session registration
	// or coupling budget.
	ErrLimit = errors.New("serve: per-session limit reached")
	// ErrRetryable reports an op that was in flight when a resident
	// world died: the server has respawned the world and replayed the
	// session's journal, so resending the identical request (same
	// session, same sequence number) is safe and will either execute
	// once or be answered from the dedup cache.  Client.do retries it
	// transparently.
	ErrRetryable = errors.New("serve: in-flight op lost to a world failure; safe to retry")
	// ErrUnknownSession rejects a resume token the server does not
	// know — never issued, already said Bye, or reclaimed by lease
	// expiry.  Resuming is impossible; the client must start fresh.
	ErrUnknownSession = errors.New("serve: unknown or expired session")
)

var codeToErr = map[int32]error{
	codeBackpressure: ErrBackpressure,
	codeSessionLimit: ErrSessionLimit,
	codeUnknownDist:  ErrUnknownDist,
	codeUnknownCpl:   ErrUnknownCoupling,
	codeBadSpec:      ErrBadSpec,
	codeTooLarge:     ErrTooLarge,
	codeShutdown:     ErrShuttingDown,
	codeWorldFailed:  ErrWorldFailed,
	codeLimit:        ErrLimit,
	codeRetryable:    ErrRetryable,
	codeUnknownSess:  ErrUnknownSession,
}

var errToCode = map[error]int32{
	ErrBackpressure:    codeBackpressure,
	ErrSessionLimit:    codeSessionLimit,
	ErrUnknownDist:     codeUnknownDist,
	ErrUnknownCoupling: codeUnknownCpl,
	ErrBadSpec:         codeBadSpec,
	ErrTooLarge:        codeTooLarge,
	ErrShuttingDown:    codeShutdown,
	ErrWorldFailed:     codeWorldFailed,
	ErrLimit:           codeLimit,
	ErrRetryable:       codeRetryable,
	ErrUnknownSession:  codeUnknownSess,
}

// sentinelOf maps a server-side error to its wire code, defaulting to
// codeBadSpec for unclassified validation failures.
func sentinelOf(err error) int32 {
	for sentinel, code := range errToCode {
		if errors.Is(err, sentinel) {
			return code
		}
	}
	return codeBadSpec
}

// DistSpec declares one side of a coupling: a library, a layout from
// the service's closed vocabulary, a global shape, and the process
// count of the simulated program that owns the data.  Two sessions
// producing identical specs share schedules (and the resident world,
// when their pair shapes match).
type DistSpec struct {
	// Library is "hpfrt", "mbparti" or "pcxxrt".
	Library string
	// Layout is the distribution recipe:
	//   hpfrt:   "blockvec" (1-D BLOCK), "rowblock" (2-D rows blocked)
	//   mbparti: "blockvec", "block2d" (2-D BLOCK×BLOCK)
	//   pcxxrt:  "roundrobin" (collection dealt element-by-element)
	Layout string
	// Shape is the global element shape: 1 dim for blockvec/roundrobin,
	// 2 dims for rowblock/block2d.
	Shape []int
	// Procs is the owning program's process count.
	Procs int
	// ElemWords is the scalar words per element, pcxxrt only (the other
	// layouts move 1-word float64 elements); 0 means 1.
	ElemWords int
}

// elems returns the global element count.
func (d *DistSpec) elems() int {
	n := 1
	for _, s := range d.Shape {
		n *= s
	}
	return n
}

// words returns the per-element scalar count.
func (d *DistSpec) words() int {
	if d.ElemWords <= 0 {
		return 1
	}
	return d.ElemWords
}

// elem returns the element type the spec moves.
func (d *DistSpec) elem() core.ElemType {
	return core.Float64Elems(d.words())
}

// Key is the spec's canonical string, the building block of the
// cross-tenant schedule-cache key: identical declarations — library,
// layout, shape, process count, element width — produce identical
// keys on every rank of the resident world.
func (d *DistSpec) Key() string {
	return fmt.Sprintf("%s:%s:%v/p%d/w%d", d.Library, d.Layout, d.Shape, d.Procs, d.words())
}

// validate checks the spec against the service vocabulary and the
// given world-size cap.
func (d *DistSpec) validate(maxProcs int) error {
	if d.Procs < 1 {
		return fmt.Errorf("%w: %d procs", ErrBadSpec, d.Procs)
	}
	if maxProcs > 0 && d.Procs > maxProcs {
		return fmt.Errorf("%w: %d procs exceeds the %d-proc world cap", ErrTooLarge, d.Procs, maxProcs)
	}
	for _, s := range d.Shape {
		if s < 1 {
			return fmt.Errorf("%w: shape %v has a non-positive extent", ErrBadSpec, d.Shape)
		}
	}
	dims := map[string]int{"blockvec": 1, "rowblock": 2, "block2d": 2, "roundrobin": 1}
	want, ok := dims[d.Layout]
	if !ok {
		return fmt.Errorf("%w: unknown layout %q", ErrBadSpec, d.Layout)
	}
	if len(d.Shape) != want {
		return fmt.Errorf("%w: layout %q wants a %d-D shape, got %v", ErrBadSpec, d.Layout, want, d.Shape)
	}
	switch d.Library {
	case "hpfrt":
		if d.Layout != "blockvec" && d.Layout != "rowblock" {
			return fmt.Errorf("%w: hpfrt supports blockvec and rowblock, not %q", ErrBadSpec, d.Layout)
		}
	case "mbparti":
		if d.Layout != "blockvec" && d.Layout != "block2d" {
			return fmt.Errorf("%w: mbparti supports blockvec and block2d, not %q", ErrBadSpec, d.Layout)
		}
	case "pcxxrt":
		if d.Layout != "roundrobin" {
			return fmt.Errorf("%w: pcxxrt supports roundrobin, not %q", ErrBadSpec, d.Layout)
		}
	default:
		return fmt.Errorf("%w: unknown library %q", ErrBadSpec, d.Library)
	}
	if d.ElemWords != 0 && d.Library != "pcxxrt" {
		return fmt.Errorf("%w: multi-word elements are a pcxxrt layout feature", ErrBadSpec)
	}
	if d.ElemWords < 0 || d.ElemWords > 16 {
		return fmt.Errorf("%w: %d words per element", ErrBadSpec, d.ElemWords)
	}
	if d.elems() < d.Procs {
		return fmt.Errorf("%w: %d elements over %d procs leaves empty ranks", ErrBadSpec, d.elems(), d.Procs)
	}
	return nil
}

// putSpec appends the spec's wire form.
func putSpec(w *codec.Writer, d *DistSpec) {
	w.PutString(d.Library)
	w.PutString(d.Layout)
	w.PutInts(d.Shape)
	w.PutInt32(int32(d.Procs))
	w.PutInt32(int32(d.ElemWords))
}

// readSpec decodes a spec written by putSpec.
func readSpec(r *codec.Reader) DistSpec {
	return DistSpec{
		Library:   r.String(),
		Layout:    r.String(),
		Shape:     r.Ints(),
		Procs:     int(r.Int32()),
		ElemWords: int(r.Int32()),
	}
}

// validatePair checks that two registered specs can be coupled: the
// linearizations must have the same element count and element type.
func validatePair(src, dst *DistSpec) error {
	if src.elems() != dst.elems() {
		return fmt.Errorf("%w: source has %d elements, destination %d — linearizations must match",
			ErrBadSpec, src.elems(), dst.elems())
	}
	if src.elem() != dst.elem() {
		return fmt.Errorf("%w: source moves %v elements, destination %v — element types must match",
			ErrBadSpec, src.elem(), dst.elem())
	}
	return nil
}

// PairKey is the cross-tenant schedule-cache key for a coupling: the
// two canonical spec keys.  The full cache key the resident world uses
// is PairKey + element type (ScheduleCache appends it) + the world's
// group incarnation (ScheduleCache.SetIncarnation).
func PairKey(src, dst *DistSpec) string {
	return src.Key() + ">" + dst.Key()
}

// MoveStats is what one executed move reports back to the client.
type MoveStats struct {
	// Hash fingerprints the moved side's post-move contents (FNV-1a
	// over every owned element in rank order) — comparable bit-for-bit
	// against a Standalone run of the same coupling sequence.
	Hash uint64
	// Elems is the schedule's global element count.
	Elems int
	// Cost is the virtual-time seconds the move took on the resident
	// world's rank 0 (schedule reuse makes later moves cheaper).
	Cost float64
	// Data holds the moved side's global values when the move asked for
	// them (WantData), scalar-major: element i's word w at i*words+w.
	Data []float64
}

// decodeError turns a msgError payload into a typed, detailed error.
func decodeError(payload []byte) error {
	r := codec.NewReader(payload)
	code := r.Int32()
	detail := r.String()
	if sentinel, ok := codeToErr[code]; ok {
		return fmt.Errorf("%w: %s", sentinel, detail)
	}
	return fmt.Errorf("%w: server error %d: %s", ErrProtocol, code, detail)
}

// encodeError builds a msgError payload from a server-side error.
func encodeError(err error) []byte {
	var w codec.Writer
	w.PutInt32(sentinelOf(err))
	w.PutString(err.Error())
	return w.Bytes()
}
