package serve

import (
	"errors"
	"testing"

	"metachaos/internal/codec"
)

func TestDistSpecValidate(t *testing.T) {
	good := []DistSpec{
		{Library: "hpfrt", Layout: "blockvec", Shape: []int{64}, Procs: 4},
		{Library: "hpfrt", Layout: "rowblock", Shape: []int{8, 8}, Procs: 2},
		{Library: "mbparti", Layout: "blockvec", Shape: []int{64}, Procs: 4},
		{Library: "mbparti", Layout: "block2d", Shape: []int{8, 8}, Procs: 4},
		{Library: "pcxxrt", Layout: "roundrobin", Shape: []int{30}, Procs: 3, ElemWords: 4},
	}
	for _, d := range good {
		if err := d.validate(8); err != nil {
			t.Errorf("%s: %v", d.Key(), err)
		}
	}
	bad := []struct {
		spec DistSpec
		want error
	}{
		{DistSpec{Library: "hpfrt", Layout: "blockvec", Shape: []int{64}, Procs: 0}, ErrBadSpec},
		{DistSpec{Library: "hpfrt", Layout: "blockvec", Shape: []int{64}, Procs: 99}, ErrTooLarge},
		{DistSpec{Library: "hpfrt", Layout: "blockvec", Shape: []int{0}, Procs: 1}, ErrBadSpec},
		{DistSpec{Library: "hpfrt", Layout: "block2d", Shape: []int{8, 8}, Procs: 4}, ErrBadSpec},
		{DistSpec{Library: "hpfrt", Layout: "rowblock", Shape: []int{8}, Procs: 2}, ErrBadSpec},
		{DistSpec{Library: "mbparti", Layout: "rowblock", Shape: []int{8, 8}, Procs: 2}, ErrBadSpec},
		{DistSpec{Library: "pcxxrt", Layout: "blockvec", Shape: []int{8}, Procs: 2}, ErrBadSpec},
		{DistSpec{Library: "fortranrt", Layout: "blockvec", Shape: []int{8}, Procs: 2}, ErrBadSpec},
		{DistSpec{Library: "hpfrt", Layout: "cyclic", Shape: []int{8}, Procs: 2}, ErrBadSpec},
		{DistSpec{Library: "hpfrt", Layout: "blockvec", Shape: []int{8}, Procs: 2, ElemWords: 2}, ErrBadSpec},
		{DistSpec{Library: "pcxxrt", Layout: "roundrobin", Shape: []int{8}, Procs: 2, ElemWords: 99}, ErrBadSpec},
		{DistSpec{Library: "hpfrt", Layout: "blockvec", Shape: []int{2}, Procs: 4}, ErrBadSpec},
	}
	for _, c := range bad {
		if err := c.spec.validate(8); !errors.Is(err, c.want) {
			t.Errorf("%+v: %v, want %v", c.spec, err, c.want)
		}
	}
}

func TestValidatePair(t *testing.T) {
	vec := DistSpec{Library: "hpfrt", Layout: "blockvec", Shape: []int{64}, Procs: 4}
	mat := DistSpec{Library: "mbparti", Layout: "block2d", Shape: []int{8, 8}, Procs: 2}
	if err := validatePair(&vec, &mat); err != nil {
		t.Errorf("64-elem vector to 8x8 matrix should couple: %v", err)
	}
	short := DistSpec{Library: "hpfrt", Layout: "blockvec", Shape: []int{32}, Procs: 4}
	if err := validatePair(&vec, &short); !errors.Is(err, ErrBadSpec) {
		t.Errorf("element-count mismatch: %v, want ErrBadSpec", err)
	}
	wide := DistSpec{Library: "pcxxrt", Layout: "roundrobin", Shape: []int{64}, Procs: 4, ElemWords: 2}
	if err := validatePair(&vec, &wide); !errors.Is(err, ErrBadSpec) {
		t.Errorf("element-type mismatch: %v, want ErrBadSpec", err)
	}
}

func TestSpecWireRoundTrip(t *testing.T) {
	in := DistSpec{Library: "pcxxrt", Layout: "roundrobin", Shape: []int{120}, Procs: 3, ElemWords: 2}
	var w codec.Writer
	putSpec(&w, &in)
	out := readSpec(codec.NewReader(w.Bytes()))
	if out.Key() != in.Key() {
		t.Errorf("round trip changed the key: %s -> %s", in.Key(), out.Key())
	}
}

// TestPairKeyCanonical pins the cache-key contract: identical
// declarations produce identical keys, and any differing field (the
// ones that change the schedule) produces a different key.
func TestPairKeyCanonical(t *testing.T) {
	a := DistSpec{Library: "hpfrt", Layout: "blockvec", Shape: []int{64}, Procs: 4}
	b := DistSpec{Library: "mbparti", Layout: "blockvec", Shape: []int{64}, Procs: 2}
	base := PairKey(&a, &b)
	if base != PairKey(&a, &b) {
		t.Fatal("identical pairs produced different keys")
	}
	variants := []DistSpec{
		{Library: "mbparti", Layout: "blockvec", Shape: []int{64}, Procs: 4},
		{Library: "hpfrt", Layout: "rowblock", Shape: []int{8, 8}, Procs: 4},
		{Library: "hpfrt", Layout: "blockvec", Shape: []int{32}, Procs: 4},
		{Library: "hpfrt", Layout: "blockvec", Shape: []int{64}, Procs: 2},
	}
	for _, v := range variants {
		if PairKey(&v, &b) == base {
			t.Errorf("variant %s collides with %s", v.Key(), a.Key())
		}
	}
	if PairKey(&b, &a) == base {
		t.Error("swapping source and destination kept the same key")
	}
}

// TestErrorCodeRoundTrip pins the typed-error wire contract: every
// sentinel survives encodeError/decodeError so clients can errors.Is.
func TestErrorCodeRoundTrip(t *testing.T) {
	sentinels := []error{
		ErrBackpressure, ErrSessionLimit, ErrUnknownDist, ErrUnknownCoupling,
		ErrBadSpec, ErrTooLarge, ErrShuttingDown, ErrWorldFailed, ErrLimit,
	}
	for _, s := range sentinels {
		wrapped := decodeError(encodeError(s))
		if !errors.Is(wrapped, s) {
			t.Errorf("sentinel %v did not survive the wire: %v", s, wrapped)
		}
	}
	// An unclassified error degrades to ErrBadSpec, never to silence.
	if !errors.Is(decodeError(encodeError(errors.New("mystery"))), ErrBadSpec) {
		t.Error("unclassified error lost its typed fallback")
	}
}
