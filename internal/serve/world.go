package serve

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"metachaos/internal/codec"
	"metachaos/internal/core"
	"metachaos/internal/distarray"
	"metachaos/internal/gidx"
	"metachaos/internal/hpfrt"
	"metachaos/internal/mbparti"
	"metachaos/internal/mpsim"
	"metachaos/internal/pcxxrt"
	"metachaos/internal/seclib"
)

// The resident world.  mpsim worlds run their program bodies to
// completion, so a daemon cannot "call into" a world per request.
// Instead the server keeps one long-running world per coupling shape
// (source procs, destination procs); its union-rank-0 body blocks on a
// real Go channel pulling batches of tenant commands.  Blocking a body
// on external input is safe: the cooperative scheduler is waiting for
// the running proc's next simulated operation, every other rank is
// parked in the Bcast below, and no virtual event is pending — the
// world simply holds still until the next batch arrives.  Rank 0 then
// broadcasts the encoded batch through the simulated network, every
// rank executes the same deterministic command stream, and rank 0
// hands each op's result back on a buffered reply channel.
//
// Per-rank core.ScheduleCaches live in the body for the world's whole
// life, which is the point of the service: tenant B declaring the
// distribution pair tenant A already coupled gets A's schedules warm.

// worldKey is the coupling shape a resident world serves.
type worldKey struct {
	srcProcs, dstProcs int
}

// Command codes inside a broadcast batch.
const (
	cmdOpen     = 1 // build objects + schedule for a new coupling handle
	cmdMove     = 2 // execute one data move on an open handle
	cmdClose    = 3 // drop a handle (schedules stay cached)
	cmdShutdown = 4 // end the batch loop; the world runs to completion
)

// op is one tenant command in flight to a resident world.
type op struct {
	cmd    int
	handle int64

	// cmdOpen
	src, dst DistSpec

	// cmdMove
	moveKind int
	seed     int64
	flags    int
	payload  []float64

	// reply, buffered cap 1, is written once by the world's rank 0
	// (leader); only ops submitted through runner.do carry one.
	reply chan opReply
}

// opReply is the leader's answer to one op.
type opReply struct {
	err      error
	warm     bool // cmdOpen: the schedule came out of the shared cache
	repaired bool // cmdOpen: built by patching a donor schedule, no collective
	hash     uint64
	elems    int
	cost     float64 // virtual seconds the op took on the leader
	data     []float64
	hits     int // leader-rank cumulative schedule-cache counters
	miss     int
	evict    int // leader-rank cumulative schedule-cache evictions
}

// runnerConfig parameterizes one resident-world incarnation.
type runnerConfig struct {
	key      worldKey
	flush    time.Duration // batching window; 0 dispatches every op immediately
	maxBatch int           // ops per broadcast
	gen      int           // incarnation ordinal (0 = first world for this key)
	panicAt  int           // >0: every rank panics at its panicAt'th batch (chaos hook)
	cacheCap int           // per-rank ScheduleCache entry bound; 0 = unbounded
}

// runner owns one resident world: the dispatcher goroutine batching
// submissions, and the goroutine blocked in mpsim.Run.
type runner struct {
	cfg runnerConfig
	key worldKey

	submit  chan *op
	batches chan []*op
	quit    chan struct{} // closes the dispatcher on clean shutdown
	done    chan struct{} // closed when the world goroutine exits

	mu      sync.Mutex
	failure error // set before done closes when the world panicked

	// onBatch, when set, observes each dispatched batch size.
	onBatch func(ops int)
}

// newRunner starts a resident world.
func newRunner(cfg runnerConfig) *runner {
	if cfg.maxBatch < 1 {
		cfg.maxBatch = 1
	}
	r := &runner{
		cfg:     cfg,
		key:     cfg.key,
		submit:  make(chan *op),
		batches: make(chan []*op, 1),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go r.dispatch()
	go r.run()
	return r
}

// run executes the world to completion, converting a simulation panic
// into ErrWorldFailed for everyone waiting on this runner.  Shards is
// left on automatic: small worlds run the serial scheduler, soak-scale
// worlds (≥256 union ranks) shard — the leader blocking on the batch
// channel is safe either way, because a proc waiting on external input
// is running (not Recv-blocked), so neither scheduler's deadlock
// detector can trip on it.
func (r *runner) run() {
	defer close(r.done)
	defer func() {
		if v := recover(); v != nil {
			r.mu.Lock()
			r.failure = fmt.Errorf("%w: %v", ErrWorldFailed, v)
			r.mu.Unlock()
		}
	}()
	mpsim.Run(mpsim.Config{
		Machine: mpsim.SP2(),
		Programs: []mpsim.ProgramSpec{
			{Name: "src", Procs: r.key.srcProcs, ProcsPerNode: 1, Body: r.body},
			{Name: "dst", Procs: r.key.dstProcs, ProcsPerNode: 1, Body: r.body},
		},
	})
}

// failErr is the error for ops cut off by the world ending.
func (r *runner) failErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failure != nil {
		return r.failure
	}
	return ErrShuttingDown
}

// failed reports whether the world is gone.
func (r *runner) failed() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// do submits one op and waits for the leader's reply.
func (r *runner) do(o *op) (opReply, error) {
	o.reply = make(chan opReply, 1)
	select {
	case r.submit <- o:
	case <-r.done:
		return opReply{}, r.failErr()
	}
	select {
	case rep := <-o.reply:
		return rep, rep.err
	case <-r.done:
		return opReply{}, r.failErr()
	}
}

// stop shuts the resident world down and waits for it to exit.
func (r *runner) stop() {
	o := &op{cmd: cmdShutdown, reply: make(chan opReply, 1)}
	select {
	case r.submit <- o:
	case <-r.done:
	}
	<-r.done
	close(r.quit)
}

// dispatch coalesces submissions into batches: the first op opens a
// flush window, further ops join until the window expires or the batch
// is full.  Small moves from many tenants ride one broadcast.
func (r *runner) dispatch() {
	for {
		var first *op
		select {
		case first = <-r.submit:
		case <-r.done:
			return
		case <-r.quit:
			return
		}
		batch := []*op{first}
		if first.cmd != cmdShutdown && r.cfg.flush > 0 {
			timer := time.NewTimer(r.cfg.flush)
		collect:
			for len(batch) < r.cfg.maxBatch {
				select {
				case o := <-r.submit:
					batch = append(batch, o)
					if o.cmd == cmdShutdown {
						break collect
					}
				case <-timer.C:
					break collect
				case <-r.done:
					break collect
				}
			}
			timer.Stop()
		}
		if r.onBatch != nil {
			r.onBatch(len(batch))
		}
		select {
		case r.batches <- batch:
		case <-r.done:
			err := r.failErr()
			for _, o := range batch {
				if o.reply != nil {
					o.reply <- opReply{err: err}
				}
			}
			return
		}
	}
}

// encodeBatch serializes a batch for the in-world broadcast.
func encodeBatch(batch []*op) []byte {
	var w codec.Writer
	w.PutInt32(int32(len(batch)))
	for _, o := range batch {
		w.PutInt32(int32(o.cmd))
		w.PutInt64(o.handle)
		switch o.cmd {
		case cmdOpen:
			putSpec(&w, &o.src)
			putSpec(&w, &o.dst)
		case cmdMove:
			w.PutInt32(int32(o.moveKind))
			w.PutInt64(o.seed)
			w.PutInt32(int32(o.flags))
			w.PutFloat64s(o.payload)
		}
	}
	return w.Bytes()
}

// decodeBatch rebuilds the batch on non-leader ranks.
func decodeBatch(enc []byte) []*op {
	r := codec.NewReader(enc)
	n := int(r.Int32())
	batch := make([]*op, n)
	for i := range batch {
		o := &op{cmd: int(r.Int32()), handle: r.Int64()}
		switch o.cmd {
		case cmdOpen:
			o.src = readSpec(r)
			o.dst = readSpec(r)
		case cmdMove:
			o.moveKind = int(r.Int32())
			o.seed = r.Int64()
			o.flags = int(r.Int32())
			o.payload = r.Float64s()
		}
		batch[i] = o
	}
	return batch
}

// resident is one rank's state for one open coupling handle.
type resident struct {
	isSrc bool
	side  side
	sched *core.Schedule
}

// body is the SPMD function every rank of the resident world runs: a
// batch loop over broadcast command streams.  All state that must
// agree across ranks (open handles, cache contents) is driven by the
// identical decoded batches, so it stays consistent by construction.
func (r *runner) body(p *mpsim.Proc) {
	coupling, err := core.CoupleByName(p, "src", "dst")
	if err != nil {
		panic(err)
	}
	ctx := core.NewCtx(p, p.Comm())
	cache := core.NewScheduleCache()
	cache.SetIncarnation(p.GroupIncarnation())
	cache.SetLimit(r.cfg.cacheCap)
	leader := coupling.Union.Rank() == 0
	open := make(map[int64]*resident)
	var donors []*scheduleDonor
	batches := 0
	for {
		var batch []*op
		if leader {
			batch = <-r.batches
			// The encoded batch goes down the broadcast tree as a
			// scatter-gather payload: one child-count's worth of sends
			// reference the same bytes, no per-send flatten.
			pay := p.BufPool().GetPayload()
			pay.AddView(encodeBatch(batch))
			coupling.Union.BcastPayload(0, pay)
			pay.Release()
		} else {
			batch = decodeBatch(coupling.Union.Bcast(0, nil))
		}
		batches++
		if r.cfg.panicAt > 0 && batches == r.cfg.panicAt {
			// Injected world failure (Options.WorldPanic).  Every rank
			// panics at the same point after the broadcast, so all procs
			// die together and the world tears down without tripping
			// deadlock detection; the batch's ops are never answered and
			// their waiters get ErrWorldFailed from runner.done closing.
			panic(fmt.Sprintf("injected world panic at batch %d (incarnation %d)", batches, r.cfg.gen))
		}
		for _, o := range batch {
			if o.cmd == cmdShutdown {
				if leader && o.reply != nil {
					o.reply <- opReply{}
				}
				return
			}
			t0 := p.Clock()
			var rep opReply
			switch o.cmd {
			case cmdOpen:
				rep = execOpen(p, ctx, coupling, cache, open, &donors, o)
			case cmdMove:
				rep = execMove(p, coupling, open, o)
			case cmdClose:
				delete(open, o.handle)
			}
			if leader && o.reply != nil {
				rep.cost = p.Clock() - t0
				rep.hits, rep.miss = cache.Counters()
				rep.evict = cache.Evictions()
				o.reply <- rep
			}
		}
	}
}

// scheduleDonor records a cached schedule that carries a route map, as
// a repair donor for later opens: a new pair whose routing differs
// from a donor's by a small delta is patched from the donor's clone
// locally instead of being built by the collective inspector.  The
// list is driven by the identical broadcast command stream, so every
// rank holds the same donors in the same order and makes the same
// repair-vs-rebuild choice.
type scheduleDonor struct {
	key   string
	et    core.ElemType
	sched *core.Schedule
}

// findDonor returns the first donor matching the new transfer's
// element type and count; insertion order is rank-identical, so the
// choice is too.
func findDonor(donors []*scheduleDonor, et core.ElemType, elems int) *scheduleDonor {
	for _, d := range donors {
		if d.et == et && d.sched.Elems() == elems {
			return d
		}
	}
	return nil
}

// hasDonor reports whether a pair key already registered a donor.
func hasDonor(donors []*scheduleDonor, key string) bool {
	for _, d := range donors {
		if d.key == key {
			return true
		}
	}
	return false
}

// routeSpec builds a descriptor-only core.Spec for one side of a
// coupling: the broadcast carries both DistSpecs, so every rank can
// construct both descriptors without owning either side's data, which
// is what lets ComputeRoutes run locally.  Only the regular-section
// libraries support descriptor-only views (their serve layouts all use
// halo 0, matching the views); other specs return nil and the open
// proceeds without routes.
func routeSpec(ctx *core.Ctx, spec *DistSpec) *core.Spec {
	var lib core.Library
	switch spec.Library {
	case "hpfrt":
		lib = hpfrt.Library
	case "mbparti":
		lib = mbparti.Library
	default:
		return nil
	}
	dist, err := distFor(spec)
	if err != nil {
		return nil
	}
	return &core.Spec{
		Lib: lib,
		Obj: seclib.NewView(dist, 0, spec.elem()),
		Set: core.NewSetOfRegions(gidx.FullSection(gidx.Shape(spec.Shape))),
		Ctx: ctx,
	}
}

// execOpen builds this rank's side of the coupling and resolves its
// schedule through the shared cache.  Schedule construction is
// collective: the cache key is identical on every rank, so either all
// ranks hit (no communication) or all ranks build together.  On a
// miss, a route-capable pair first derives its route map locally and
// tries to repair a matching donor schedule — two layouts with the
// same linearized placement (say blockvec and rowblock over the same
// element count) share one schedule with no collective at all.
func execOpen(p *mpsim.Proc, ctx *core.Ctx, coupling *core.Coupling,
	cache *core.ScheduleCache, open map[int64]*resident, donors *[]*scheduleDonor, o *op) opReply {
	isSrc := p.Program() == "src"
	spec := &o.src
	if !isSrc {
		spec = &o.dst
	}
	sd, err := buildSide(spec, p.Rank())
	if err != nil {
		return opReply{err: err}
	}
	key := PairKey(&o.src, &o.dst)
	hits0, _ := cache.Counters()
	var repaired bool
	sched, err := cache.Get(key, o.src.elem(), func() (*core.Schedule, error) {
		var rm *core.RouteMap
		if srcRS, dstRS := routeSpec(ctx, &o.src), routeSpec(ctx, &o.dst); srcRS != nil && dstRS != nil {
			rm, _ = core.ComputeRoutes(coupling, srcRS, dstRS)
		}
		collective := func() (*core.Schedule, error) {
			cs := &core.Spec{Lib: sd.lib, Obj: sd.obj, Set: sd.set, Ctx: ctx}
			var s *core.Schedule
			var err error
			if isSrc {
				s, err = core.ComputeSchedule(coupling, cs, nil, core.Cooperation)
			} else {
				s, err = core.ComputeSchedule(coupling, nil, cs, core.Cooperation)
			}
			if err == nil && rm != nil {
				err = s.AttachRoutes(rm, p.WorldRank())
			}
			return s, err
		}
		if rm != nil {
			if don := findDonor(*donors, o.src.elem(), rm.Elems); don != nil {
				s, rep, err := core.RepairOrRebuild(don.sched, rm, coupling.View(), core.RepairPolicy{}, collective)
				repaired = rep
				return s, err
			}
		}
		return collective()
	})
	if err != nil {
		return opReply{err: err}
	}
	hits1, _ := cache.Counters()
	if sched.HasRoutes() && !hasDonor(*donors, key) {
		*donors = append(*donors, &scheduleDonor{key: key, et: o.src.elem(), sched: sched})
	}
	open[o.handle] = &resident{isSrc: isSrc, side: sd, sched: sched}
	return opReply{warm: hits1 > hits0, repaired: repaired, elems: sched.Elems()}
}

// execMove runs one data move on an open handle: fill the sending
// side, execute the schedule, then gather the landing side's contents
// to the leader for fingerprinting (and, when asked, the data itself).
func execMove(p *mpsim.Proc, coupling *core.Coupling, open map[int64]*resident, o *op) opReply {
	res, ok := open[o.handle]
	if !ok {
		return opReply{err: fmt.Errorf("%w: handle %d", ErrUnknownCoupling, o.handle)}
	}
	sd, sched := res.side, res.sched
	words := sd.spec.words()
	fill := func() {
		if o.flags&flagHasPayload != 0 {
			sd.fill(func(pos, wd int) float64 { return o.payload[pos*words+wd] })
		} else {
			sd.fill(func(pos, wd int) float64 { return fillValue(o.seed, pos, wd) })
		}
	}
	switch o.moveKind {
	case OpMove, OpMoveAdd:
		if res.isSrc {
			fill()
			if o.moveKind == OpMove {
				sched.MoveSend(sd.obj)
			} else {
				sched.MoveAddSend(sd.obj)
			}
		} else if o.moveKind == OpMove {
			sched.MoveRecv(sd.obj)
		} else {
			sched.MoveAddRecv(sd.obj)
		}
	case OpMoveReverse:
		if res.isSrc {
			sched.MoveReverseRecv(sd.obj)
		} else {
			fill()
			sched.MoveReverseSend(sd.obj)
		}
	default:
		return opReply{err: fmt.Errorf("%w: move kind %d", ErrBadSpec, o.moveKind)}
	}

	// The landing side is the destination, except for reverse moves.
	landing := res.isSrc == (o.moveKind == OpMoveReverse)
	var w codec.Writer
	if landing {
		sd.read(func(pos int, vals []float64) {
			w.PutInt32(int32(pos))
			for _, v := range vals {
				w.PutFloat64(v)
			}
		})
	}
	parts := coupling.Union.Gather(0, w.Bytes())
	rep := opReply{elems: sched.Elems()}
	if coupling.Union.Rank() == 0 {
		h := fnv.New64a()
		for _, part := range parts {
			h.Write(part)
		}
		rep.hash = h.Sum64()
		if o.flags&flagWantData != 0 {
			data := make([]float64, sched.Elems()*words)
			for _, part := range parts {
				rd := codec.NewReader(part)
				for rd.Remaining() > 0 {
					pos := int(rd.Int32())
					for wd := 0; wd < words; wd++ {
						data[pos*words+wd] = rd.Float64()
					}
				}
			}
			rep.data = data
		}
	}
	return rep
}

// side is one rank's object on one side of a coupling, plus the
// layout-specific accessors the executor needs: deterministic owned
// iteration by global linearization position.
type side struct {
	spec DistSpec
	lib  core.Library
	obj  core.DistObject
	set  *core.SetOfRegions
	// fill sets every owned element: word wd of the element at global
	// position pos gets v(pos, wd).
	fill func(v func(pos, wd int) float64)
	// read visits every owned element in ascending position order.
	read func(f func(pos int, vals []float64))
}

// buildSide constructs rank's portion of the object a spec declares.
func buildSide(spec *DistSpec, rank int) (side, error) {
	sd := side{spec: *spec}
	switch spec.Library {
	case "pcxxrt":
		c, err := pcxxrt.NewCollection(spec.Shape[0], spec.Procs, spec.words(), rank)
		if err != nil {
			return side{}, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
		sd.lib = pcxxrt.Library
		sd.obj = c
		sd.set = core.NewSetOfRegions(pcxxrt.RangeRegion{Lo: 0, Hi: spec.Shape[0], Step: 1})
		sd.fill = func(v func(pos, wd int) float64) {
			c.ForEachOwned(func(i int, elem []float64) {
				for wd := range elem {
					elem[wd] = v(i, wd)
				}
			})
		}
		sd.read = func(f func(pos int, vals []float64)) {
			c.ForEachOwned(f)
		}
		return sd, nil
	case "hpfrt", "mbparti":
		dist, err := distFor(spec)
		if err != nil {
			return side{}, err
		}
		var get func(coords []int) float64
		var set func(coords []int, v float64)
		if spec.Library == "hpfrt" {
			a := hpfrt.NewArray(dist, rank)
			sd.lib, sd.obj, get, set = hpfrt.Library, a, a.Get, a.Set
		} else {
			a := mbparti.MustNewArray(dist, rank, 0)
			sd.lib, sd.obj, get, set = mbparti.Library, a, a.Get, a.Set
		}
		shape := gidx.Shape(spec.Shape)
		sd.set = core.NewSetOfRegions(gidx.FullSection(shape))
		sd.fill = func(v func(pos, wd int) float64) {
			eachOwnedCoord(dist, rank, func(coords []int) {
				set(coords, v(shape.Linear(coords), 0))
			})
		}
		sd.read = func(f func(pos int, vals []float64)) {
			var one [1]float64
			eachOwnedCoord(dist, rank, func(coords []int) {
				one[0] = get(coords)
				f(shape.Linear(coords), one[:])
			})
		}
		return sd, nil
	}
	return side{}, fmt.Errorf("%w: unknown library %q", ErrBadSpec, spec.Library)
}

// distFor maps a spec's layout to its distribution descriptor.
func distFor(spec *DistSpec) (*distarray.Dist, error) {
	switch spec.Layout {
	case "blockvec":
		d, err := distarray.NewDist(gidx.Shape{spec.Shape[0]}, []int{spec.Procs},
			[]distarray.Kind{distarray.Block})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
		return d, nil
	case "rowblock":
		return hpfrt.RowBlockMatrix(spec.Shape[0], spec.Shape[1], spec.Procs), nil
	case "block2d":
		return distarray.MustBlock2D(spec.Shape[0], spec.Shape[1], spec.Procs), nil
	}
	return nil, fmt.Errorf("%w: layout %q", ErrBadSpec, spec.Layout)
}

// eachOwnedCoord walks rank's owned global coordinates in local
// row-major order (the same order distarray.FillGlobal uses).
func eachOwnedCoord(d *distarray.Dist, rank int, f func(coords []int)) {
	counts := d.LocalCounts(rank)
	n := 1
	for _, c := range counts {
		n *= c
	}
	if n == 0 {
		return
	}
	local := make([]int, len(counts))
	for k := 0; k < n; k++ {
		f(d.GlobalOf(rank, local))
		for dim := len(local) - 1; dim >= 0; dim-- {
			local[dim]++
			if local[dim] < counts[dim] {
				break
			}
			local[dim] = 0
		}
	}
}

// fillValue is the deterministic element generator clients and the
// Standalone reference share: a splitmix-style hash of (seed,
// position, word) folded to a small integer, so MoveAdd accumulation
// is exact in float64.
func fillValue(seed int64, pos, wd int) float64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(pos)*0xbf58476d1ce4e5b9 + uint64(wd+1)*0x94d049bb133111eb
	x ^= x >> 31
	x *= 0xd6e8feb86659fd93
	x ^= x >> 32
	return float64(int64(x%4096) - 2048)
}
