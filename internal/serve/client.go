package serve

import (
	"fmt"
	"net"
	"sync"

	"metachaos/internal/codec"
)

// Client is a tenant's connection to the coupling daemon.  Requests
// are synchronous and serialized (one in flight per client); run
// several clients for concurrency, as cmd/mcload does.
type Client struct {
	mu       sync.Mutex
	conn     net.Conn
	nextID   uint32
	maxFrame int
	tenant   string
}

// Dial connects to a daemon on network ("tcp" or "unix") and address,
// introduces the tenant, and verifies protocol agreement.
func Dial(network, addr, tenant string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, maxFrame: DefaultMaxFrame, tenant: tenant}
	var w codec.Writer
	w.PutString(tenant)
	w.PutInt32(protoVersion)
	payload, err := c.do(msgHello, w.Bytes(), msgWelcome)
	if err != nil {
		conn.Close()
		return nil, err
	}
	r := codec.NewReader(payload)
	if v := r.Int32(); v != protoVersion {
		conn.Close()
		return nil, fmt.Errorf("%w: server speaks protocol %d, client %d", ErrProtocol, v, protoVersion)
	}
	return c, nil
}

// do sends one request and returns the matching response payload,
// converting msgError responses into typed errors.
func (c *Client) do(typ byte, payload []byte, want byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextID
	c.nextID++
	if err := writeFrame(c.conn, typ, id, payload); err != nil {
		return nil, err
	}
	rtyp, rid, rpayload, err := readFrame(c.conn, c.maxFrame)
	if err != nil {
		return nil, err
	}
	if rid != id {
		return nil, fmt.Errorf("%w: response id %d for request %d", ErrProtocol, rid, id)
	}
	if rtyp == msgError {
		return nil, decodeError(rpayload)
	}
	if rtyp != want {
		return nil, fmt.Errorf("%w: response type %d, want %d", ErrProtocol, rtyp, want)
	}
	return rpayload, nil
}

// RegisterDist declares a distribution under a client-chosen id.
func (c *Client) RegisterDist(id int, spec DistSpec) error {
	var w codec.Writer
	w.PutInt32(int32(id))
	putSpec(&w, &spec)
	_, err := c.do(msgRegisterDist, w.Bytes(), msgOK)
	return err
}

// OpenCoupling couples two registered distributions under a
// client-chosen coupling id.  warm reports that the daemon served the
// schedule from its shared cache (another tenant, or an earlier
// coupling of this one, already built it).
func (c *Client) OpenCoupling(id, srcID, dstID int) (warm bool, elems int, err error) {
	var w codec.Writer
	w.PutInt32(int32(id))
	w.PutInt32(int32(srcID))
	w.PutInt32(int32(dstID))
	payload, err := c.do(msgOpenCoupling, w.Bytes(), msgCouplingReady)
	if err != nil {
		return false, 0, err
	}
	r := codec.NewReader(payload)
	return r.Int32() != 0, int(r.Int64()), nil
}

// Move executes one seed-filled move on an open coupling.
func (c *Client) Move(id, kind int, seed int64) (MoveStats, error) {
	return c.move(id, kind, seed, nil, false)
}

// MoveData is Move but also returns the landing side's global values.
func (c *Client) MoveData(id, kind int, seed int64) (MoveStats, error) {
	return c.move(id, kind, seed, nil, true)
}

// MovePayload executes a move whose sending side is filled from
// explicit global values (length elems × words, position-major).
func (c *Client) MovePayload(id, kind int, values []float64, wantData bool) (MoveStats, error) {
	return c.move(id, kind, 0, values, wantData)
}

func (c *Client) move(id, kind int, seed int64, values []float64, wantData bool) (MoveStats, error) {
	flags := 0
	if wantData {
		flags |= flagWantData
	}
	if values != nil {
		flags |= flagHasPayload
	}
	var w codec.Writer
	w.PutInt32(int32(id))
	w.PutInt32(int32(kind))
	w.PutInt64(seed)
	w.PutInt32(int32(flags))
	if values != nil {
		w.PutFloat64s(values)
	}
	payload, err := c.do(msgMove, w.Bytes(), msgMoveDone)
	if err != nil {
		return MoveStats{}, err
	}
	r := codec.NewReader(payload)
	st := MoveStats{
		Hash:  uint64(r.Int64()),
		Elems: int(r.Int64()),
		Cost:  r.Float64(),
	}
	if data := r.Float64s(); len(data) > 0 {
		st.Data = data
	}
	return st, nil
}

// CloseCoupling releases an open coupling (the daemon keeps its
// schedule cached for future tenants).
func (c *Client) CloseCoupling(id int) error {
	var w codec.Writer
	w.PutInt32(int32(id))
	_, err := c.do(msgCloseCoupling, w.Bytes(), msgOK)
	return err
}

// Stats fetches the daemon's counters and gauges.
func (c *Client) Stats() (map[string]float64, error) {
	payload, err := c.do(msgStats, nil, msgStatsReply)
	if err != nil {
		return nil, err
	}
	r := codec.NewReader(payload)
	n := int(r.Int32())
	out := make(map[string]float64, n)
	for i := 0; i < n; i++ {
		name := r.String()
		out[name] = r.Float64()
	}
	return out, nil
}

// Close says goodbye and drops the connection.
func (c *Client) Close() error {
	_, err := c.do(msgBye, nil, msgOK)
	c.conn.Close()
	return err
}
