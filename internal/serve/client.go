package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"time"

	"metachaos/internal/codec"
	"metachaos/internal/faultsim"
)

// Client is a tenant's connection to the coupling daemon.  Requests
// are synchronous and serialized (one in flight per client); run
// several clients for concurrency, as cmd/mcload does.
//
// The client is fault-tolerant by default: on connection loss it
// redials with jittered exponential backoff and resumes its leased
// session by token, and it transparently resends the in-flight request
// after a reconnect or an ErrRetryable answer.  Resends reuse the
// original request id — the session-scoped sequence number — so the
// server's dedup cache makes every retry idempotent: an op whose reply
// was lost is answered from the cache, never applied twice.
type Client struct {
	mu   sync.Mutex
	opts DialOptions

	conn       net.Conn
	nextID     uint32
	token      string
	leaseMs    int64
	jitterSeed uint64

	established bool   // first hello completed (reconnects count after it)
	dials       uint64 // connection ordinal (chaos stream selector)
	reconnects  int
	retries     int
}

// DialOptions configures DialWith; zero values take the defaults.
type DialOptions struct {
	// Network ("tcp" or "unix") and Addr locate the daemon.
	Network string
	Addr    string
	// Tenant is the session's tenant name.
	Tenant string
	// MaxAttempts bounds tries per operation (first try included);
	// default 8.
	MaxAttempts int
	// Backoff is the delay before the second attempt, doubling per
	// attempt up to MaxBackoff, each scaled by a deterministic jitter
	// in [0.5, 1.5).  Defaults 5ms / 250ms.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// MaxFrame bounds a response frame's payload bytes.
	MaxFrame int
	// Chaos, when set, wraps every connection with seeded wire-fault
	// injection (test harness; see ChaosConfig).
	Chaos *ChaosConfig
}

func (o *DialOptions) withDefaults() DialOptions {
	out := *o
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = 8
	}
	if out.Backoff <= 0 {
		out.Backoff = 5 * time.Millisecond
	}
	if out.MaxBackoff <= 0 {
		out.MaxBackoff = 250 * time.Millisecond
	}
	if out.MaxFrame <= 0 {
		out.MaxFrame = DefaultMaxFrame
	}
	return out
}

// Dial connects to a daemon on network ("tcp" or "unix") and address,
// introduces the tenant, and verifies protocol agreement, with the
// default reconnect/retry policy.
func Dial(network, addr, tenant string) (*Client, error) {
	return DialWith(DialOptions{Network: network, Addr: addr, Tenant: tenant})
}

// DialWith is Dial with explicit fault-tolerance knobs.
func DialWith(opts DialOptions) (*Client, error) {
	o := opts.withDefaults()
	h := fnv.New64a()
	h.Write([]byte(o.Tenant))
	c := &Client{opts: o, nextID: 1, jitterSeed: h.Sum64()}
	if o.Chaos != nil {
		c.jitterSeed ^= o.Chaos.Seed
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < o.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.backoff(attempt)
		}
		err, fatal := c.reconnectLocked()
		if err == nil {
			c.established = true
			return c, nil
		}
		lastErr = err
		if fatal {
			return nil, err
		}
	}
	return nil, fmt.Errorf("serve: dial gave up after %d attempts: %w", o.MaxAttempts, lastErr)
}

// Token returns the session's resume token (for diagnostics).
func (c *Client) Token() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.token
}

// Lease returns the server-granted session lease (0 = no expiry).
func (c *Client) Lease() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.leaseMs) * time.Millisecond
}

// Reconnects returns how many times the client re-established its
// session after losing the connection.
func (c *Client) Reconnects() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconnects
}

// Retries returns how many requests were resent after an ErrRetryable
// answer (a world died mid-op and was respawned).
func (c *Client) Retries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retries
}

// backoff sleeps the jittered exponential delay before attempt
// (attempt ≥ 1); the jitter is a pure hash so runs replay exactly.
func (c *Client) backoff(attempt int) {
	d := c.opts.Backoff << uint(attempt-1)
	if d > c.opts.MaxBackoff || d <= 0 {
		d = c.opts.MaxBackoff
	}
	c.dials++ // advance the stream so rival attempts never share jitter
	scale := 0.5 + faultsim.Unit(c.jitterSeed, 0, c.dials)
	time.Sleep(time.Duration(float64(d) * scale))
}

// dialRaw opens (and chaos-wraps) one connection.
func (c *Client) dialRaw() (net.Conn, error) {
	conn, err := net.Dial(c.opts.Network, c.opts.Addr)
	if err != nil {
		return nil, err
	}
	ord := c.dials
	c.dials++
	if c.opts.Chaos != nil {
		conn = newChaosConn(conn, *c.opts.Chaos, ord)
	}
	return conn, nil
}

// reconnectLocked dials and performs the hello handshake, resuming the
// leased session when a token is held.  fatal reports a typed refusal
// (session limit, unknown session, protocol mismatch) that retrying
// cannot fix.
func (c *Client) reconnectLocked() (err error, fatal bool) {
	conn, err := c.dialRaw()
	if err != nil {
		return err, false
	}
	c.conn = conn
	var w codec.Writer
	w.PutString(c.opts.Tenant)
	w.PutInt32(protoVersion)
	w.PutString(c.token)
	id := c.nextID
	c.nextID++
	rp, appErr, connErr := c.exchange(msgHello, id, w.Bytes(), msgWelcome)
	if connErr != nil {
		conn.Close()
		c.conn = nil
		return connErr, false
	}
	if appErr != nil {
		conn.Close()
		c.conn = nil
		return appErr, true
	}
	r := codec.NewReader(rp)
	if v := r.Int32(); v != protoVersion {
		conn.Close()
		c.conn = nil
		return fmt.Errorf("%w: server speaks protocol %d, client %d", ErrProtocol, v, protoVersion), true
	}
	_ = r.String() // server name
	_ = r.String() // machine name
	c.token = r.String()
	c.leaseMs = r.Int64()
	if c.established {
		c.reconnects++
	}
	return nil, false
}

// exchange performs one request/response round trip on the current
// connection.  It separates application errors (a well-formed msgError
// answer: the connection is healthy) from connection errors (anything
// that leaves the stream unusable).
func (c *Client) exchange(typ byte, id uint32, payload []byte, want byte) (rp []byte, appErr, connErr error) {
	if err := writeFrame(c.conn, typ, id, payload); err != nil {
		return nil, nil, err
	}
	rtyp, rid, rpayload, err := readFrame(c.conn, c.opts.MaxFrame)
	if err != nil {
		return nil, nil, err
	}
	if rid != id {
		return nil, nil, fmt.Errorf("%w: response id %d for request %d", ErrProtocol, rid, id)
	}
	if rtyp == msgError {
		return nil, decodeError(rpayload), nil
	}
	if rtyp != want {
		return nil, nil, fmt.Errorf("%w: response type %d, want %d", ErrProtocol, rtyp, want)
	}
	return rpayload, nil, nil
}

// do sends one request and returns the matching response payload,
// reconnecting and resending (same id) across connection loss and
// ErrRetryable answers; other typed errors return immediately.
func (c *Client) do(typ byte, payload []byte, want byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextID
	c.nextID++
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.backoff(attempt)
		}
		if c.conn == nil {
			err, fatal := c.reconnectLocked()
			if err != nil {
				lastErr = err
				if fatal {
					return nil, err
				}
				continue
			}
		}
		rp, appErr, connErr := c.exchange(typ, id, payload, want)
		if connErr != nil {
			lastErr = connErr
			c.conn.Close()
			c.conn = nil
			continue
		}
		if appErr != nil {
			if errors.Is(appErr, ErrRetryable) {
				c.retries++
				lastErr = appErr
				continue
			}
			return nil, appErr
		}
		return rp, nil
	}
	return nil, fmt.Errorf("serve: giving up after %d attempts: %w", c.opts.MaxAttempts, lastErr)
}

// RegisterDist declares a distribution under a client-chosen id.
func (c *Client) RegisterDist(id int, spec DistSpec) error {
	var w codec.Writer
	w.PutInt32(int32(id))
	putSpec(&w, &spec)
	_, err := c.do(msgRegisterDist, w.Bytes(), msgOK)
	return err
}

// OpenCoupling couples two registered distributions under a
// client-chosen coupling id.  warm reports that the daemon served the
// schedule from its shared cache (another tenant, or an earlier
// coupling of this one, already built it).
func (c *Client) OpenCoupling(id, srcID, dstID int) (warm bool, elems int, err error) {
	var w codec.Writer
	w.PutInt32(int32(id))
	w.PutInt32(int32(srcID))
	w.PutInt32(int32(dstID))
	payload, err := c.do(msgOpenCoupling, w.Bytes(), msgCouplingReady)
	if err != nil {
		return false, 0, err
	}
	r := codec.NewReader(payload)
	return r.Int32() != 0, int(r.Int64()), nil
}

// Move executes one seed-filled move on an open coupling.
func (c *Client) Move(id, kind int, seed int64) (MoveStats, error) {
	return c.move(id, kind, seed, nil, false)
}

// MoveData is Move but also returns the landing side's global values.
func (c *Client) MoveData(id, kind int, seed int64) (MoveStats, error) {
	return c.move(id, kind, seed, nil, true)
}

// MovePayload executes a move whose sending side is filled from
// explicit global values (length elems × words, position-major).
func (c *Client) MovePayload(id, kind int, values []float64, wantData bool) (MoveStats, error) {
	return c.move(id, kind, 0, values, wantData)
}

func (c *Client) move(id, kind int, seed int64, values []float64, wantData bool) (MoveStats, error) {
	flags := 0
	if wantData {
		flags |= flagWantData
	}
	if values != nil {
		flags |= flagHasPayload
	}
	var w codec.Writer
	w.PutInt32(int32(id))
	w.PutInt32(int32(kind))
	w.PutInt64(seed)
	w.PutInt32(int32(flags))
	if values != nil {
		w.PutFloat64s(values)
	}
	payload, err := c.do(msgMove, w.Bytes(), msgMoveDone)
	if err != nil {
		return MoveStats{}, err
	}
	r := codec.NewReader(payload)
	st := MoveStats{
		Hash:  uint64(r.Int64()),
		Elems: int(r.Int64()),
		Cost:  r.Float64(),
	}
	if data := r.Float64s(); len(data) > 0 {
		st.Data = data
	}
	return st, nil
}

// CloseCoupling releases an open coupling (the daemon keeps its
// schedule cached for future tenants).
func (c *Client) CloseCoupling(id int) error {
	var w codec.Writer
	w.PutInt32(int32(id))
	_, err := c.do(msgCloseCoupling, w.Bytes(), msgOK)
	return err
}

// Ping refreshes the session lease without doing any work.
func (c *Client) Ping() error {
	_, err := c.do(msgPing, nil, msgOK)
	return err
}

// Stats fetches the daemon's counters and gauges.
func (c *Client) Stats() (map[string]float64, error) {
	payload, err := c.do(msgStats, nil, msgStatsReply)
	if err != nil {
		return nil, err
	}
	r := codec.NewReader(payload)
	n := int(r.Int32())
	out := make(map[string]float64, n)
	for i := 0; i < n; i++ {
		name := r.String()
		out[name] = r.Float64()
	}
	return out, nil
}

// Close says goodbye and drops the connection.  Bye is not retried: if
// the connection is already gone the lease is left to expire instead.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	id := c.nextID
	c.nextID++
	_, appErr, connErr := c.exchange(msgBye, id, nil, msgOK)
	c.conn.Close()
	c.conn = nil
	if appErr != nil {
		return appErr
	}
	return connErr
}
