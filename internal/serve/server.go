package serve

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"metachaos/internal/obs"
)

// Limits on what one daemon will host, beyond which admission control
// answers with typed errors instead of degrading.
const (
	defaultMaxSessions  = 16
	defaultMaxInflight  = 64
	defaultMaxBatch     = 16
	defaultFlush        = 2 * time.Millisecond
	defaultMaxProcs     = 8
	defaultMaxDists     = 64
	defaultMaxCpls      = 32
	defaultLease        = 30 * time.Second
	defaultMaxJournal   = 4096
	defaultCacheEntries = 128
	// maxElems bounds a single distribution's global element count so a
	// tenant cannot make the resident world allocate unboundedly.
	maxElems = 1 << 20
)

// Options configures a Server; zero values take the defaults above.
type Options struct {
	// MaxSessions caps concurrently leased tenant sessions
	// (ErrSessionLimit).  A session counts from Hello until Bye or
	// lease expiry — a detached-but-leased session still holds its
	// slot, which is what makes resume meaningful.
	MaxSessions int
	// MaxInflight caps moves executing or queued across every tenant;
	// excess moves are refused with ErrBackpressure, never queued.
	MaxInflight int
	// MaxBatch caps tenant ops coalesced into one world broadcast.
	MaxBatch int
	// FlushWindow is how long the dispatcher holds a batch open for
	// more ops.  Negative disables batching (every op ships alone);
	// zero takes the default.
	FlushWindow time.Duration
	// MaxFrame bounds a request frame's payload bytes.
	MaxFrame int
	// MaxProcs caps the per-side process count of a registered
	// distribution (and with it the size of resident worlds).
	MaxProcs int
	// MaxDists and MaxCouplings are per-session registration budgets.
	MaxDists     int
	MaxCouplings int
	// Lease is the session TTL.  Any request — including the explicit
	// msgPing — refreshes it; a session idle past the lease is
	// reclaimed: its connection is closed, its couplings released, and
	// its slot returned to admission control.  Zero takes the default;
	// negative disables expiry.
	Lease time.Duration
	// MaxJournal caps the per-coupling op journal that backs world
	// respawn.  A coupling whose journal overflows keeps working but
	// becomes unrecoverable if its world later dies.  Zero takes the
	// default; negative disables journaling entirely.
	MaxJournal int
	// CacheEntries bounds each resident rank's schedule cache with LRU
	// eviction.  Zero takes the default; negative means unbounded.
	CacheEntries int
	// WorldPanic, when set, injects deterministic world failures: it is
	// consulted whenever a resident world for (srcProcs, dstProcs)
	// starts, with incarnation 0 for the shape's first world, 1 for its
	// first respawn, and so on.  A positive return value b makes every
	// rank of that incarnation panic at its b'th command batch.  Test
	// and chaos hook; leave nil in production.
	WorldPanic func(srcProcs, dstProcs, incarnation int) int
	// Logf, when set, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxSessions == 0 {
		out.MaxSessions = defaultMaxSessions
	}
	if out.MaxInflight == 0 {
		out.MaxInflight = defaultMaxInflight
	}
	if out.MaxBatch <= 0 {
		out.MaxBatch = defaultMaxBatch
	}
	if out.FlushWindow == 0 {
		out.FlushWindow = defaultFlush
	}
	if out.FlushWindow < 0 {
		out.FlushWindow = 0
	}
	if out.MaxFrame <= 0 {
		out.MaxFrame = DefaultMaxFrame
	}
	if out.MaxProcs == 0 {
		out.MaxProcs = defaultMaxProcs
	}
	if out.MaxDists == 0 {
		out.MaxDists = defaultMaxDists
	}
	if out.MaxCouplings == 0 {
		out.MaxCouplings = defaultMaxCpls
	}
	if out.Lease == 0 {
		out.Lease = defaultLease
	}
	if out.Lease < 0 {
		out.Lease = 0 // never expire
	}
	if out.MaxJournal == 0 {
		out.MaxJournal = defaultMaxJournal
	}
	if out.MaxJournal < 0 {
		out.MaxJournal = 0 // journaling off
	}
	if out.CacheEntries == 0 {
		out.CacheEntries = defaultCacheEntries
	}
	if out.CacheEntries < 0 {
		out.CacheEntries = 0 // unbounded
	}
	return out
}

// Server is the coupling daemon: an accept loop, a connection handler
// per socket, a leased tenant state per session token, and a resident
// world per coupling shape.
type Server struct {
	opts Options

	mu         sync.Mutex
	ln         net.Listener
	conns      map[*session]struct{}   // live connection handlers
	states     map[string]*tenantState // leased sessions by resume token
	runners    map[worldKey]*runner    // current world per shape
	worldGen   map[worldKey]int        // incarnations started per shape
	worldEvict map[*runner]int         // last-seen cache evictions per incarnation
	nextHandle int64
	nextToken  int64
	inflight   int
	closed     bool
	metrics    *obs.Metrics

	// respawnMu serializes world revival: exactly one goroutine builds
	// the replacement world and replays journals; rivals queue behind
	// it and adopt the result.  Never held together with mu.
	respawnMu sync.Mutex

	sweepStop chan struct{}
	sweepDone chan struct{}

	wg sync.WaitGroup
}

// NewServer builds a server; call Serve or ListenAndServe to run it.
func NewServer(opts Options) *Server {
	s := &Server{
		opts:       opts.withDefaults(),
		conns:      make(map[*session]struct{}),
		states:     make(map[string]*tenantState),
		runners:    make(map[worldKey]*runner),
		worldGen:   make(map[worldKey]int),
		worldEvict: make(map[*runner]int),
		metrics:    obs.NewMetrics(),
		sweepStop:  make(chan struct{}),
		sweepDone:  make(chan struct{}),
	}
	if s.opts.Lease > 0 {
		go s.sweep()
	} else {
		close(s.sweepDone)
	}
	return s
}

// ListenAndServe listens on network ("tcp" or "unix") and address and
// runs the accept loop until Close.
func (s *Server) ListenAndServe(network, addr string) error {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve runs the accept loop on ln until Close; it returns nil after a
// clean shutdown.  Session admission happens at Hello time (so the
// refusal carries the client's request id), not accept time.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrShuttingDown
	}
	s.ln = ln
	s.mu.Unlock()
	s.logf("serve: listening on %s %s", ln.Addr().Network(), ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		sess, ok := s.track(conn)
		if !ok {
			conn.Close()
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sess.serve()
		}()
	}
}

// Addr returns the listener address once Serve is running.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// track registers a new connection handler unless the server is closing.
func (s *Server) track(conn net.Conn) (*session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	sess := &session{srv: s, conn: conn}
	s.conns[sess] = struct{}{}
	s.metrics.Gauge("serve_conns").Set(float64(len(s.conns)))
	return sess, true
}

// dropConn unregisters a finished connection handler.
func (s *Server) dropConn(sess *session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, sess)
	s.metrics.Gauge("serve_conns").Set(float64(len(s.conns)))
}

// newState admits a fresh tenant session and leases it a slot.  Resume
// tokens are deterministic per server instance — they are session
// correlators for crash recovery, not authentication secrets.
func (s *Server) newState(tenant string, conn net.Conn) (*tenantState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrShuttingDown
	}
	if len(s.states) >= s.opts.MaxSessions {
		s.metrics.Counter("serve_session_refused_total").Inc()
		return nil, fmt.Errorf("%w: %d sessions leased", ErrSessionLimit, s.opts.MaxSessions)
	}
	s.nextToken++
	st := &tenantState{
		token:  fmt.Sprintf("mc-%d-%08x", s.nextToken, uint32(uint64(s.nextToken)*0x9e3779b1)),
		tenant: tenant,
		dists:  make(map[int32]*DistSpec),
		cpls:   make(map[int32]*liveCoupling),
		conn:   conn,
	}
	st.deadline = s.deadlineLocked()
	s.states[st.token] = st
	s.metrics.Counter("serve_sessions_total").Inc()
	s.metrics.Gauge("serve_sessions").Set(float64(len(s.states)))
	return st, nil
}

// resume re-attaches a reconnecting client to its leased session,
// kicking any stale connection still holding it.
func (s *Server) resume(token string, conn net.Conn) (*tenantState, error) {
	s.mu.Lock()
	st := s.states[token]
	if st == nil || st.gone {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: resume token not recognized", ErrUnknownSession)
	}
	old := st.conn
	st.conn = conn
	st.deadline = s.deadlineLocked()
	s.metrics.Counter("serve_resumes_total").Inc()
	s.mu.Unlock()
	if old != nil && old != conn {
		old.Close()
	}
	return st, nil
}

// detach disassociates a dead connection from its session; the leased
// state stays resumable until the lease runs out.
func (s *Server) detach(st *tenantState, conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st.conn == conn {
		st.conn = nil
	}
}

// touch refreshes a session's lease.
func (s *Server) touch(st *tenantState) {
	if s.opts.Lease <= 0 {
		return
	}
	s.mu.Lock()
	st.deadline = s.deadlineLocked()
	s.mu.Unlock()
}

// deadlineLocked computes the next lease expiry instant; s.mu held.
func (s *Server) deadlineLocked() time.Time {
	if s.opts.Lease <= 0 {
		return time.Time{}
	}
	return time.Now().Add(s.opts.Lease)
}

// isGone reports whether a session has been reclaimed (Bye or expiry).
func (s *Server) isGone(st *tenantState) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return st.gone
}

// finish reclaims a session after Bye: slot, budget and couplings all
// return to the pool.
func (s *Server) finish(st *tenantState) {
	st.reqMu.Lock()
	defer st.reqMu.Unlock()
	s.reclaim(st, "")
}

// reclaim releases a session's couplings and deletes its state; the
// caller holds st.reqMu (which serializes against in-flight requests)
// but not s.mu.  counter, when non-empty, names the metric to bump.
func (s *Server) reclaim(st *tenantState, counter string) {
	s.mu.Lock()
	if st.gone {
		s.mu.Unlock()
		return
	}
	st.gone = true
	delete(s.states, st.token)
	conn := st.conn
	st.conn = nil
	var cpls []*liveCoupling
	for _, lc := range st.cpls {
		cpls = append(cpls, lc)
	}
	st.cpls = make(map[int32]*liveCoupling)
	if counter != "" {
		s.metrics.Counter(counter).Inc()
	}
	s.metrics.Gauge("serve_sessions").Set(float64(len(s.states)))
	s.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	// Handle order keeps the close stream deterministic for the worlds.
	sort.Slice(cpls, func(i, j int) bool { return cpls[i].handle < cpls[j].handle })
	for _, lc := range cpls {
		s.runnerOf(lc).do(&op{cmd: cmdClose, handle: lc.handle})
	}
}

// sweep is the lease sweeper: it periodically reclaims sessions whose
// lease ran out, returning slot, in-flight budget and couplings.
func (s *Server) sweep() {
	defer close(s.sweepDone)
	tick := s.opts.Lease / 8
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case <-t.C:
			s.expireIdle()
		}
	}
}

// expireIdle reclaims every session whose lease has run out.
func (s *Server) expireIdle() {
	now := time.Now()
	s.mu.Lock()
	var idle []*tenantState
	for _, st := range s.states {
		if !st.deadline.IsZero() && now.After(st.deadline) {
			idle = append(idle, st)
		}
	}
	s.mu.Unlock()
	for _, st := range idle {
		// Taking reqMu serializes with any in-flight request: once held,
		// the handler is between requests, so re-check the deadline — the
		// request we waited behind refreshed the lease.
		st.reqMu.Lock()
		s.mu.Lock()
		expired := !st.gone && !st.deadline.IsZero() && time.Now().After(st.deadline)
		s.mu.Unlock()
		if expired {
			s.reclaim(st, "serve_lease_expired")
			s.logf("serve: tenant %q lease expired, session %s reclaimed", st.tenant, st.token)
		}
		st.reqMu.Unlock()
	}
}

// Close stops the accept loop, closes every connection, reclaims every
// session, shuts down the resident worlds and waits for everything to
// drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	var conns []net.Conn
	for sess := range s.conns {
		conns = append(conns, sess.conn)
	}
	s.mu.Unlock()
	close(s.sweepStop)
	<-s.sweepDone
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	// No handler (and no revival) is active past the WaitGroup, so the
	// runner map is final.
	s.mu.Lock()
	var rs []*runner
	for _, r := range s.runners {
		rs = append(rs, r)
	}
	s.mu.Unlock()
	for _, r := range rs {
		r.stop()
	}
	s.logf("serve: shut down")
	return nil
}

// startRunnerLocked launches the next world incarnation for key and
// publishes it; s.mu held.
func (s *Server) startRunnerLocked(key worldKey) *runner {
	gen := s.worldGen[key]
	s.worldGen[key] = gen + 1
	panicAt := 0
	if s.opts.WorldPanic != nil {
		panicAt = s.opts.WorldPanic(key.srcProcs, key.dstProcs, gen)
	}
	r := newRunner(runnerConfig{
		key:      key,
		flush:    s.opts.FlushWindow,
		maxBatch: s.opts.MaxBatch,
		gen:      gen,
		panicAt:  panicAt,
		cacheCap: s.opts.CacheEntries,
	})
	r.onBatch = func(ops int) {
		s.mu.Lock()
		s.metrics.Counter("serve_batches_total").Inc()
		s.metrics.Counter("serve_batched_ops_total").Add(int64(ops))
		s.mu.Unlock()
	}
	s.runners[key] = r
	s.metrics.Counter("serve_worlds_total").Inc()
	s.metrics.Gauge("serve_worlds").Set(float64(len(s.runners)))
	s.logf("serve: resident world %dx%d started (incarnation %d)", key.srcProcs, key.dstProcs, gen)
	return r
}

// runnerFor returns the resident world serving key, starting it (or
// reviving a failed one) as needed.
func (s *Server) runnerFor(key worldKey) (*runner, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	if r, ok := s.runners[key]; ok && !r.failed() {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()
	return s.revive(key)
}

// revive replaces key's dead resident world: it starts the next
// incarnation, replays every surviving coupling's journal into it —
// the same op stream Standalone executes, verified move-by-move
// against the journaled hashes — and only then repoints the couplings
// at the new runner.  respawnMu serializes rival revivals: the first
// caller does the work, later ones adopt its world.
func (s *Server) revive(key worldKey) (*runner, error) {
	s.respawnMu.Lock()
	defer s.respawnMu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	if r, ok := s.runners[key]; ok && !r.failed() {
		s.mu.Unlock()
		return r, nil
	}
	_, respawning := s.runners[key]
	type replayItem struct {
		lc  *liveCoupling
		ops []moveRec
	}
	var items []replayItem
	for _, st := range s.states {
		for _, lc := range st.cpls {
			if lc.key != key || lc.broken != nil {
				continue
			}
			if lc.journalLost {
				lc.broken = fmt.Errorf("%w: journal overflowed before the world died; coupling unrecoverable", ErrWorldFailed)
				s.metrics.Counter("serve_replay_unrecoverable_total").Inc()
				continue
			}
			items = append(items, replayItem{lc: lc, ops: append([]moveRec(nil), lc.journal...)})
		}
	}
	// Handle order reproduces a deterministic open/move stream on every
	// revival regardless of map iteration.
	sort.Slice(items, func(i, j int) bool { return items[i].lc.handle < items[j].lc.handle })
	r := s.startRunnerLocked(key)
	if respawning {
		s.metrics.Counter("serve_world_respawns").Inc()
	}
	s.mu.Unlock()

	replayed := 0
	for _, it := range items {
		lc := it.lc
		if _, err := r.do(&op{cmd: cmdOpen, handle: lc.handle, src: lc.src, dst: lc.dst}); err != nil {
			s.breakCoupling(lc, fmt.Errorf("replaying open: %w", err))
			continue
		}
		replayed++
		bad := false
		for i, mr := range it.ops {
			rep, err := r.do(&op{
				cmd: cmdMove, handle: lc.handle,
				moveKind: mr.kind, seed: mr.seed, flags: mr.flags &^ flagWantData, payload: mr.payload,
			})
			if err != nil {
				s.breakCoupling(lc, fmt.Errorf("replaying move %d: %w", i, err))
				bad = true
				break
			}
			if rep.hash != mr.hash {
				s.breakCoupling(lc, fmt.Errorf("%w: replayed move %d hashed %#x, journal recorded %#x",
					ErrWorldFailed, i, rep.hash, mr.hash))
				s.count("serve_replay_mismatch_total", 1)
				bad = true
				break
			}
			replayed++
		}
		if bad {
			continue
		}
	}
	s.mu.Lock()
	for _, it := range items {
		if it.lc.broken == nil {
			it.lc.r = r
		}
	}
	s.metrics.Counter("serve_ops_replayed").Add(int64(replayed))
	s.mu.Unlock()
	if replayed > 0 {
		s.logf("serve: world %dx%d respawned, %d journaled ops replayed", key.srcProcs, key.dstProcs, replayed)
	}
	return r, nil
}

// breakCoupling marks a coupling permanently failed (its journal could
// not be replayed bit-identically).
func (s *Server) breakCoupling(lc *liveCoupling, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if lc.broken == nil {
		lc.broken = err
	}
}

// runnerOf reads a coupling's current runner (revival repoints it).
func (s *Server) runnerOf(lc *liveCoupling) *runner {
	s.mu.Lock()
	defer s.mu.Unlock()
	return lc.r
}

// brokenOf reads a coupling's terminal failure, if any.
func (s *Server) brokenOf(lc *liveCoupling) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return lc.broken
}

// journal appends a successfully applied move to a coupling's respawn
// journal; past MaxJournal the journal is dropped and the coupling
// marked unrecoverable-on-respawn (it keeps working otherwise).
func (s *Server) journal(lc *liveCoupling, mr moveRec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.MaxJournal <= 0 || lc.journalLost {
		return
	}
	if len(lc.journal) >= s.opts.MaxJournal {
		lc.journal = nil
		lc.journalLost = true
		s.metrics.Counter("serve_journal_overflow_total").Inc()
		return
	}
	lc.journal = append(lc.journal, mr)
}

// addCoupling publishes an opened coupling into the session's table
// (under s.mu so revival's scan sees a consistent map).
func (s *Server) addCoupling(st *tenantState, id int32, lc *liveCoupling) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st.cpls[id] = lc
}

// removeCoupling unpublishes a coupling before its world-side close.
func (s *Server) removeCoupling(st *tenantState, id int32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(st.cpls, id)
}

// noteEvict records the latest cumulative schedule-cache eviction count
// a world incarnation reported; the gauge sums across incarnations.
func (s *Server) noteEvict(r *runner, evict int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.worldEvict[r] == evict {
		return
	}
	s.worldEvict[r] = evict
	total := 0
	for _, v := range s.worldEvict {
		total += v
	}
	s.metrics.Gauge("serve_cache_evictions").Set(float64(total))
}

// handle allocates a globally unique coupling handle.
func (s *Server) handle() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextHandle++
	return s.nextHandle
}

// tryAcquire is move admission control: it claims one in-flight slot
// or reports backpressure.
func (s *Server) tryAcquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight >= s.opts.MaxInflight {
		s.metrics.Counter("serve_backpressure_total").Inc()
		return false
	}
	s.inflight++
	s.metrics.Gauge("serve_inflight").Set(float64(s.inflight))
	return true
}

// release returns an in-flight slot.
func (s *Server) release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight--
	s.metrics.Gauge("serve_inflight").Set(float64(s.inflight))
}

// count bumps a named counter (obs instruments are not atomic, so all
// access goes through the server mutex).
func (s *Server) count(name string, n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics.Counter(name).Add(n)
}

// Stats snapshots the server's counters and gauges, plus the derived
// schedule-cache hit rate over coupling opens.
func (s *Server) Stats() map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]float64)
	for _, name := range s.metrics.CounterNames() {
		out[name] = float64(s.metrics.Counter(name).Value())
	}
	for _, name := range s.metrics.GaugeNames() {
		if v, ok := s.metrics.Gauge(name).Value(); ok {
			out[name] = v
		}
	}
	opens := out["serve_opens_total"]
	if opens > 0 {
		out["serve_cache_hit_rate"] = out["serve_open_warm_total"] / opens
	}
	return out
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}
