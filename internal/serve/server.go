package serve

import (
	"fmt"
	"net"
	"sync"
	"time"

	"metachaos/internal/obs"
)

// Limits on what one daemon will host, beyond which admission control
// answers with typed errors instead of degrading.
const (
	defaultMaxSessions = 16
	defaultMaxInflight = 64
	defaultMaxBatch    = 16
	defaultFlush       = 2 * time.Millisecond
	defaultMaxProcs    = 8
	defaultMaxDists    = 64
	defaultMaxCpls     = 32
	// maxElems bounds a single distribution's global element count so a
	// tenant cannot make the resident world allocate unboundedly.
	maxElems = 1 << 20
)

// Options configures a Server; zero values take the defaults above.
type Options struct {
	// MaxSessions caps concurrently connected tenants (ErrSessionLimit).
	MaxSessions int
	// MaxInflight caps moves executing or queued across every tenant;
	// excess moves are refused with ErrBackpressure, never queued.
	MaxInflight int
	// MaxBatch caps tenant ops coalesced into one world broadcast.
	MaxBatch int
	// FlushWindow is how long the dispatcher holds a batch open for
	// more ops.  Negative disables batching (every op ships alone);
	// zero takes the default.
	FlushWindow time.Duration
	// MaxFrame bounds a request frame's payload bytes.
	MaxFrame int
	// MaxProcs caps the per-side process count of a registered
	// distribution (and with it the size of resident worlds).
	MaxProcs int
	// MaxDists and MaxCouplings are per-session registration budgets.
	MaxDists     int
	MaxCouplings int
	// Logf, when set, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxSessions == 0 {
		out.MaxSessions = defaultMaxSessions
	}
	if out.MaxInflight == 0 {
		out.MaxInflight = defaultMaxInflight
	}
	if out.MaxBatch <= 0 {
		out.MaxBatch = defaultMaxBatch
	}
	if out.FlushWindow == 0 {
		out.FlushWindow = defaultFlush
	}
	if out.FlushWindow < 0 {
		out.FlushWindow = 0
	}
	if out.MaxFrame <= 0 {
		out.MaxFrame = DefaultMaxFrame
	}
	if out.MaxProcs == 0 {
		out.MaxProcs = defaultMaxProcs
	}
	if out.MaxDists == 0 {
		out.MaxDists = defaultMaxDists
	}
	if out.MaxCouplings == 0 {
		out.MaxCouplings = defaultMaxCpls
	}
	return out
}

// Server is the coupling daemon: an accept loop, a session handler per
// connection, and a resident world per coupling shape.
type Server struct {
	opts Options

	mu         sync.Mutex
	ln         net.Listener
	sessions   map[*session]struct{}
	runners    map[worldKey]*runner
	nextHandle int64
	inflight   int
	closed     bool
	metrics    *obs.Metrics

	wg sync.WaitGroup
}

// NewServer builds a server; call Serve or ListenAndServe to run it.
func NewServer(opts Options) *Server {
	return &Server{
		opts:     opts.withDefaults(),
		sessions: make(map[*session]struct{}),
		runners:  make(map[worldKey]*runner),
		metrics:  obs.NewMetrics(),
	}
}

// ListenAndServe listens on network ("tcp" or "unix") and address and
// runs the accept loop until Close.
func (s *Server) ListenAndServe(network, addr string) error {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve runs the accept loop on ln until Close; it returns nil after a
// clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrShuttingDown
	}
	s.ln = ln
	s.mu.Unlock()
	s.logf("serve: listening on %s %s", ln.Addr().Network(), ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		sess, admit := s.admit(conn)
		if !admit {
			// Tell the refused client why before hanging up.
			s.count("serve_session_refused_total", 1)
			writeFrame(conn, msgError, 0, encodeError(fmt.Errorf("%w: %d sessions connected", ErrSessionLimit, s.opts.MaxSessions)))
			conn.Close()
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sess.serve()
		}()
	}
}

// Addr returns the listener address once Serve is running.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// admit registers a new session unless the server is full or closing.
func (s *Server) admit(conn net.Conn) (*session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.sessions) >= s.opts.MaxSessions {
		return nil, false
	}
	sess := newSession(s, conn)
	s.sessions[sess] = struct{}{}
	s.metrics.Counter("serve_sessions_total").Inc()
	s.metrics.Gauge("serve_sessions").Set(float64(len(s.sessions)))
	return sess, true
}

// drop unregisters a finished session.
func (s *Server) drop(sess *session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.sessions, sess)
	s.metrics.Gauge("serve_sessions").Set(float64(len(s.sessions)))
}

// Close stops the accept loop, closes every session connection, shuts
// down the resident worlds and waits for everything to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	var conns []net.Conn
	for sess := range s.sessions {
		conns = append(conns, sess.conn)
	}
	var rs []*runner
	for _, r := range s.runners {
		rs = append(rs, r)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	for _, r := range rs {
		r.stop()
	}
	s.logf("serve: shut down")
	return nil
}

// runnerFor returns the resident world serving key, starting it (or
// replacing a failed one) as needed.
func (s *Server) runnerFor(key worldKey) (*runner, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrShuttingDown
	}
	if r, ok := s.runners[key]; ok && !r.failed() {
		return r, nil
	}
	r := newRunner(key, s.opts.FlushWindow, s.opts.MaxBatch)
	r.onBatch = func(ops int) {
		s.mu.Lock()
		s.metrics.Counter("serve_batches_total").Inc()
		s.metrics.Counter("serve_batched_ops_total").Add(int64(ops))
		s.mu.Unlock()
	}
	s.runners[key] = r
	s.metrics.Counter("serve_worlds_total").Inc()
	s.metrics.Gauge("serve_worlds").Set(float64(len(s.runners)))
	s.logf("serve: resident world %dx%d started", key.srcProcs, key.dstProcs)
	return r, nil
}

// handle allocates a globally unique coupling handle.
func (s *Server) handle() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextHandle++
	return s.nextHandle
}

// tryAcquire is move admission control: it claims one in-flight slot
// or reports backpressure.
func (s *Server) tryAcquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight >= s.opts.MaxInflight {
		s.metrics.Counter("serve_backpressure_total").Inc()
		return false
	}
	s.inflight++
	return true
}

// release returns an in-flight slot.
func (s *Server) release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight--
}

// count bumps a named counter (obs instruments are not atomic, so all
// access goes through the server mutex).
func (s *Server) count(name string, n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics.Counter(name).Add(n)
}

// Stats snapshots the server's counters and gauges, plus the derived
// schedule-cache hit rate over coupling opens.
func (s *Server) Stats() map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]float64)
	for _, name := range s.metrics.CounterNames() {
		out[name] = float64(s.metrics.Counter(name).Value())
	}
	for _, name := range s.metrics.GaugeNames() {
		if v, ok := s.metrics.Gauge(name).Value(); ok {
			out[name] = v
		}
	}
	opens := out["serve_opens_total"]
	if opens > 0 {
		out["serve_cache_hit_rate"] = out["serve_open_warm_total"] / opens
	}
	return out
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}
