package ckpt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"metachaos/internal/core"
	"metachaos/internal/mpsim"
)

// memObj is the minimal DistObject: bare local storage.
type memObj struct{ m core.Mem }

func (o memObj) Elem() core.ElemType { return o.m.Elem() }
func (o memObj) LocalMem() core.Mem  { return o.m }

// withProc runs body on a single simulated process.
func withProc(body func(p *mpsim.Proc)) {
	mpsim.RunSPMD(mpsim.SP2(), 1, body)
}

// fillDistinct gives every scalar unit a distinct value, including an
// int64 beyond 2^53 that a float64 round trip would corrupt.
func fillDistinct(m core.Mem) {
	if m.Elem().Kind == core.KindInt64 {
		i64 := m.Int64s()
		for u := range i64 {
			i64[u] = (int64(1) << 53) + 1 + int64(u)
		}
		return
	}
	for u := 0; u < m.Units(); u++ {
		m.SetF(u, float64(u+1))
	}
}

func TestSaveRestoreAllKinds(t *testing.T) {
	for _, et := range []core.ElemType{core.Float64, core.Float32, core.Int64, core.Int32, core.Byte} {
		t.Run(et.String(), func(t *testing.T) {
			var failure string
			withProc(func(p *mpsim.Proc) {
				m := core.MakeMem(et, 16)
				fillDistinct(m)
				want := m.Clone()
				st := NewStore()
				st.Save(p, 1, Named{Name: "x", Obj: memObj{m}})
				// Scribble over the live storage, then rewind.
				for u := 0; u < m.Units(); u++ {
					m.SetF(u, 0)
				}
				if err := st.Restore(p, 1, Named{Name: "x", Obj: memObj{m}}); err != nil {
					failure = err.Error()
					return
				}
				for u := 0; u < m.Units(); u++ {
					if m.GetF(u) != want.GetF(u) {
						failure = "restored value differs"
						return
					}
				}
				if et.Kind == core.KindInt64 && m.Int64s()[3] != (int64(1)<<53)+4 {
					failure = "int64 beyond 2^53 not restored bit-exactly"
				}
			})
			if failure != "" {
				t.Fatal(failure)
			}
		})
	}
}

func TestRestoreDetectsCorruption(t *testing.T) {
	var err error
	withProc(func(p *mpsim.Proc) {
		m := core.MakeMem(core.Float64, 8)
		fillDistinct(m)
		st := NewStore()
		st.Save(p, 1, Named{Name: "x", Obj: memObj{m}})
		for k, snap := range st.snaps {
			snap.wire[5] ^= 0x40
			st.snaps[k] = snap
		}
		err = st.Restore(p, 1, Named{Name: "x", Obj: memObj{m}})
	})
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("restore of corrupted snapshot: err = %v, want checksum failure", err)
	}
}

func TestRestoreErrors(t *testing.T) {
	var missing, shape error
	withProc(func(p *mpsim.Proc) {
		m := core.MakeMem(core.Float64, 8)
		st := NewStore()
		st.Save(p, 1, Named{Name: "x", Obj: memObj{m}})
		missing = st.Restore(p, 2, Named{Name: "x", Obj: memObj{m}})
		other := core.MakeMem(core.Float64, 4)
		shape = st.Restore(p, 1, Named{Name: "x", Obj: memObj{other}})
	})
	if missing == nil {
		t.Error("restore of unsaved version succeeded")
	}
	if shape == nil {
		t.Error("restore onto mismatched shape succeeded")
	}
}

func TestVersionsAndDrop(t *testing.T) {
	withProc(func(p *mpsim.Proc) {
		m := core.MakeMem(core.Int32, 4)
		st := NewStore()
		obj := Named{Name: "x", Obj: memObj{m}}
		st.Save(p, 3, obj)
		st.Save(p, 7, obj)
		if v, ok := st.Latest("x"); !ok || v != 7 {
			panic("Latest wrong")
		}
		if !st.Has("x", 3) || st.Has("x", 4) {
			panic("Has wrong")
		}
		st.Drop(3)
		if st.Has("x", 3) || st.Len() != 1 {
			panic("Drop wrong")
		}
		if _, ok := st.Latest("y"); ok {
			panic("Latest of unsaved name")
		}
		if s, r := st.Counters(); s != 2 || r != 0 {
			panic("Counters wrong")
		}
	})
}

func TestDescriptorOnlyObjectSkipped(t *testing.T) {
	var err error
	withProc(func(p *mpsim.Proc) {
		remote := memObj{core.NilMem(core.Float64)}
		st := NewStore()
		st.Save(p, 1, Named{Name: "x", Obj: remote})
		err = st.Restore(p, 1, Named{Name: "x", Obj: remote})
	})
	if err != nil {
		t.Fatalf("descriptor-only round trip: %v", err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.mckpt")
	var failure string
	withProc(func(p *mpsim.Proc) {
		m := core.MakeMem(core.Int64, 8)
		fillDistinct(m)
		want := m.Clone()
		st := NewStore()
		st.Save(p, 5, Named{Name: "x", Obj: memObj{m}})
		if err := st.SaveFile(path); err != nil {
			failure = err.Error()
			return
		}
		// A fresh store on a fresh incarnation loads the file and
		// restores over zeroed storage.
		loaded := NewStore()
		if err := loaded.LoadFile(path); err != nil {
			failure = err.Error()
			return
		}
		clear(m.Int64s())
		if err := loaded.Restore(p, 5, Named{Name: "x", Obj: memObj{m}}); err != nil {
			failure = err.Error()
			return
		}
		for u := range m.Int64s() {
			if m.Int64s()[u] != want.Int64s()[u] {
				failure = "file round trip lost data"
				return
			}
		}
	})
	if failure != "" {
		t.Fatal(failure)
	}
}

func TestLoadFileRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage")
	if err := writeGarbage(path); err != nil {
		t.Fatal(err)
	}
	st := NewStore()
	if err := st.LoadFile(path); err == nil {
		t.Fatal("loading garbage succeeded")
	}
}

func writeGarbage(path string) error {
	return os.WriteFile(path, []byte("not a checkpoint store at all"), 0o644)
}

func TestSaveCoordinated(t *testing.T) {
	saved := make([]bool, 3)
	mpsim.RunSPMD(mpsim.SP2(), 3, func(p *mpsim.Proc) {
		m := core.MakeMem(core.Float64, 4)
		fillDistinct(m)
		st := NewStore()
		st.SaveCoordinated(p, p.Comm(), 1, Named{Name: "x", Obj: memObj{m}})
		saved[p.Rank()] = st.Has("x", 1)
	})
	for r, ok := range saved {
		if !ok {
			t.Errorf("rank %d missing coordinated checkpoint", r)
		}
	}
}
