// Package ckpt provides coordinated checkpoint/restart for
// distributed objects: each process snapshots its local storage of
// every registered object into a versioned, checksummed in-memory
// store, and after a fail-stop crash the survivors (or a restarted
// process) replay a snapshot back into live objects and resume from
// it.
//
// The store is process-local by design — the simulator's fail-stop
// model loses a dead rank's memory, so recovery protocols built on it
// either shrink the group to processes that still hold their
// snapshots (the elastic experiment's path) or keep a remote copy via
// SaveFile/LoadFile.  Consistency across processes comes from the
// caller: SaveCoordinated brackets the snapshot in a barrier so every
// member checkpoints the same version at the same point of the
// computation.
package ckpt

import (
	"fmt"
	"os"
	"sort"

	"metachaos/internal/codec"
	"metachaos/internal/core"
	"metachaos/internal/mpsim"
)

// Named pairs a distributed object with the stable name it is
// checkpointed under.  Names must be consistent across processes and
// across save/restore pairs.
type Named struct {
	Name string
	Obj  core.DistObject
}

// snapshot is one object's frozen local storage: the element type and
// unit count for shape checking, the wire-encoded payload (the same
// little-endian scalar encoding move lanes use, exact for every
// element kind), and an FNV-1a checksum of the payload.
type snapshot struct {
	elem  core.ElemType
	units int
	wire  []byte
	sum   uint64
}

type key struct {
	name    string
	version int
}

// Store holds one process's checkpoints, versioned by caller-chosen
// integer tags (an iteration number, a phase counter).  The zero
// value is ready to use.
type Store struct {
	snaps           map[key]snapshot
	saves, restores int
}

// NewStore returns an empty checkpoint store.
func NewStore() *Store { return &Store{} }

// Save snapshots each object's local storage under version.  A
// descriptor-only object (nil LocalMem) saves an empty snapshot, so a
// process can register the same object list on both sides of a
// coupling.  Saving an existing (name, version) pair overwrites it.
// The copy cost is charged to the process's virtual clock and the
// snapshot appears as a ckpt.save span on traces.
func (st *Store) Save(p *mpsim.Proc, version int, objs ...Named) {
	sp := p.Span("ckpt.save")
	if st.snaps == nil {
		st.snaps = make(map[key]snapshot)
	}
	total := 0
	for _, o := range objs {
		m := o.Obj.LocalMem()
		snap := snapshot{elem: o.Obj.Elem(), units: m.Units()}
		if !m.IsNil() {
			snap.wire = m.AppendTo(make([]byte, 0, m.Units()*snap.elem.Kind.Size()))
			snap.sum = fnv64a(snap.wire)
		}
		st.snaps[key{o.Name, version}] = snap
		total += len(snap.wire)
	}
	st.saves++
	p.ChargeCopy(total)
	sp.SetBytes(total).End(p.Clock())
}

// SaveCoordinated is Save bracketed by barriers on comm: the entry
// barrier makes the snapshot a consistency point (no member
// checkpoints until every member has quiesced its in-flight moves),
// and the exit barrier keeps a fast member from racing ahead and
// mutating state other members still reference.  Every member of comm
// must call it with the same version.
func (st *Store) SaveCoordinated(p *mpsim.Proc, comm *mpsim.Comm, version int, objs ...Named) {
	comm.Barrier()
	st.Save(p, version, objs...)
	comm.Barrier()
}

// Restore replays version's snapshots into the objects: each named
// object's local storage is overwritten with the checkpointed bytes
// after the checksum and shape are re-verified.  Objects whose
// snapshot was descriptor-only are skipped.  It is the inverse of
// Save, process-local — on a shrunken group, each survivor restores
// its own storage and no communication happens.
func (st *Store) Restore(p *mpsim.Proc, version int, objs ...Named) error {
	sp := p.Span("ckpt.restore")
	defer func() { sp.End(p.Clock()) }()
	total := 0
	for _, o := range objs {
		snap, ok := st.snaps[key{o.Name, version}]
		if !ok {
			return fmt.Errorf("ckpt: no checkpoint of %q at version %d", o.Name, version)
		}
		if snap.wire == nil {
			continue
		}
		if sum := fnv64a(snap.wire); sum != snap.sum {
			return fmt.Errorf("ckpt: checkpoint of %q version %d is corrupt (checksum %016x, want %016x)",
				o.Name, version, sum, snap.sum)
		}
		m := o.Obj.LocalMem()
		if o.Obj.Elem() != snap.elem || m.Units() != snap.units {
			return fmt.Errorf("ckpt: checkpoint of %q version %d holds %d units of %v, object has %d units of %v",
				o.Name, version, snap.units, snap.elem, m.Units(), o.Obj.Elem())
		}
		m.SetFromWire(snap.wire)
		total += len(snap.wire)
	}
	st.restores++
	p.ChargeCopy(total)
	sp.SetBytes(total)
	return nil
}

// Has reports whether a checkpoint of name exists at version.
func (st *Store) Has(name string, version int) bool {
	_, ok := st.snaps[key{name, version}]
	return ok
}

// Latest returns the highest version name is checkpointed at, and
// false when name was never saved.
func (st *Store) Latest(name string) (int, bool) {
	best, found := 0, false
	for k := range st.snaps {
		if k.name == name && (!found || k.version > best) {
			best, found = k.version, true
		}
	}
	return best, found
}

// Drop removes every object's snapshot at version, bounding the
// store's memory in long checkpoint loops.
func (st *Store) Drop(version int) {
	for k := range st.snaps {
		if k.version == version {
			delete(st.snaps, k)
		}
	}
}

// Counters returns how many Save and Restore operations completed.
func (st *Store) Counters() (saves, restores int) { return st.saves, st.restores }

// Len returns the number of stored snapshots across all versions.
func (st *Store) Len() int { return len(st.snaps) }

const fileMagic = "mckpt1"

// SaveFile serializes the whole store to path, the durable complement
// to the in-memory store for restart-from-disk recovery flows.  The
// encoding is deterministic (snapshots sorted by name then version).
func (st *Store) SaveFile(path string) error {
	var w codec.Writer
	w.PutString(fileMagic)
	keys := make([]key, 0, len(st.snaps))
	for k := range st.snaps {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].name != keys[b].name {
			return keys[a].name < keys[b].name
		}
		return keys[a].version < keys[b].version
	})
	w.PutInt64(int64(len(keys)))
	for _, k := range keys {
		snap := st.snaps[k]
		w.PutString(k.name)
		w.PutInt64(int64(k.version))
		w.PutInt32(int32(snap.elem.Kind))
		w.PutInt32(int32(snap.elem.Words))
		w.PutInt64(int64(snap.units))
		w.PutInt64(int64(snap.sum))
		w.PutBytes(snap.wire)
	}
	if err := os.WriteFile(path, w.Bytes(), 0o644); err != nil {
		return fmt.Errorf("ckpt: writing store: %w", err)
	}
	return nil
}

// LoadFile deserializes a store written by SaveFile, replacing the
// receiver's snapshots.  Checksums are verified per snapshot at
// Restore time, not here, so a corrupt file loads but fails loudly on
// use.
func (st *Store) LoadFile(path string) (err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("ckpt: reading store: %w", err)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("ckpt: %s is not a checkpoint store: %v", path, r)
		}
	}()
	r := codec.NewReader(data)
	if magic := r.String(); magic != fileMagic {
		return fmt.Errorf("ckpt: %s is not a checkpoint store (magic %q)", path, magic)
	}
	n := int(r.Int64())
	snaps := make(map[key]snapshot, n)
	for i := 0; i < n; i++ {
		name := r.String()
		version := int(r.Int64())
		snap := snapshot{
			elem: core.ElemType{Kind: core.ElemKind(r.Int32()), Words: int(r.Int32())},
		}
		snap.units = int(r.Int64())
		snap.sum = uint64(r.Int64())
		if wire := r.Bytes(); len(wire) > 0 {
			snap.wire = wire
		}
		snaps[key{name, version}] = snap
	}
	st.snaps = snaps
	return nil
}

// fnv64a is the FNV-1a checksum guarding snapshots against bit rot.
func fnv64a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
