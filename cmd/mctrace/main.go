// Command mctrace runs a representative workload and prints its
// communication structure: the process-pair message matrix, per-rank
// traffic, and the virtual makespan.  It is the quickest way to see
// what a Meta-Chaos schedule actually puts on the wire.
//
// With -fault the run goes over a deterministically faulty network;
// add -reliable to let the retransmitting transport recover, and the
// report grows drop/retransmit/duplicate/corruption counters.
//
// With -crash rank@time (or a crash-scheduling profile such as
// -fault crashy) a process suffers a fail-stop fault mid-run: the
// virtual-time heartbeat detector declares it dead, survivors' blocked
// operations fail fast, and the report grows the crash history with
// detection lags plus each survivor's outcome.
//
// With -phases the run carries the virtual-time observability layer
// and the report ends with the per-phase breakdown (schedule build,
// pack, ship, wait, unpack, ...) that cmd/mcprof exports as timelines.
//
// Usage:
//
//	mctrace -workload remap|section|clientserver [-procs N]
//	mctrace -workload section -fault lossy -seed 7 -reliable
//	mctrace -workload section -crash 2@0.004 -reliable
//	mctrace -workload remap -fault crashy -seed 3 -reliable
//	mctrace -workload section -phases
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"metachaos"
	"metachaos/internal/chaoslib"
	"metachaos/internal/core"
	"metachaos/internal/exp"
	"metachaos/internal/faultsim"
	"metachaos/internal/mpsim"
	"metachaos/internal/obs"
)

func main() {
	workload := flag.String("workload", "section", "workload to trace: section, remap or clientserver")
	procs := flag.Int("procs", 4, "process count (per program for clientserver)")
	fault := flag.String("fault", "none", "fault profile: none, mild, lossy, random, crashy or flaky")
	seed := flag.Uint64("seed", 1, "fault profile seed")
	reliable := flag.Bool("reliable", false, "enable the retransmitting reliable transport")
	crash := flag.String("crash", "", "schedule fail-stop crashes: rank@time[,rank@time...], e.g. 2@0.004")
	phases := flag.Bool("phases", false, "attach the observability layer and print per-phase virtual-time totals")
	flag.Parse()

	prof, err := faultsim.ByName(*fault, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mctrace: %v\n", err)
		os.Exit(2)
	}
	if *crash != "" {
		if prof == nil {
			prof = &faultsim.Profile{Seed: *seed}
		}
		for _, spec := range strings.Split(*crash, ",") {
			rank, at, err := parseCrash(spec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mctrace: -crash %q: %v\n", spec, err)
				os.Exit(2)
			}
			prof = prof.WithCrash(rank, at)
		}
	}
	var inj mpsim.FaultInjector
	if prof != nil {
		inj = prof
	}
	var rel *mpsim.Reliability
	if *reliable {
		rel = &mpsim.Reliability{}
	}
	var tr *obs.Tracer
	if *phases {
		tr = obs.NewTracer()
	}
	crashes := prof.HasCrashes()
	if crashes && *workload == "clientserver" {
		fmt.Fprintln(os.Stderr, "mctrace: the clientserver workload does not take crash faults; see the elastic experiment (mcprof -workload elastic)")
		os.Exit(2)
	}
	var outcomes []string
	runSPMD := func(nprocs int, body func(p *mpsim.Proc)) *mpsim.Stats {
		wrapped := body
		if crashes {
			// Under fail-stop faults a survivor's blocked operation
			// panics with a peer-death error; run each rank's workload
			// in a deadline scope so the trace completes and reports
			// every rank's outcome instead of aborting.
			outcomes = make([]string, nprocs)
			wrapped = func(p *mpsim.Proc) {
				r := p.Rank()
				if err := p.WithTimeout(0.5, func() { body(p) }); err != nil {
					outcomes[r] = err.Error()
				} else {
					outcomes[r] = "completed"
				}
			}
		}
		return mpsim.Run(mpsim.Config{
			Machine:  mpsim.SP2(),
			Fault:    inj,
			Reliable: rel,
			Crash:    prof.CrashPlan(),
			Obs:      tr,
			Programs: []mpsim.ProgramSpec{{Name: "spmd", Procs: nprocs, Body: wrapped}},
		})
	}

	var stats *metachaos.Stats
	switch *workload {
	case "section":
		stats = traceSection(runSPMD, *procs)
	case "remap":
		stats = traceRemap(runSPMD, *procs)
	case "clientserver":
		stats = exp.RunClientServerStats(exp.CSConfig{
			ClientProcs: 1, ServerProcs: *procs, Vectors: 1,
			Fault: inj, Reliable: *reliable, Obs: tr,
		})
	default:
		fmt.Fprintf(os.Stderr, "mctrace: unknown workload %q\n", *workload)
		os.Exit(2)
	}
	report(stats)
	reportCrashes(stats, outcomes)
	if tr != nil {
		fmt.Println()
		if err := tr.WriteReport(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mctrace: %v\n", err)
			os.Exit(1)
		}
	}
}

type runner func(nprocs int, body func(p *mpsim.Proc)) *mpsim.Stats

// traceSection runs a regular section copy between two block arrays.
func traceSection(run runner, nprocs int) *metachaos.Stats {
	const n = 64
	return run(nprocs, func(p *mpsim.Proc) {
		ctx := metachaos.NewCtx(p, p.Comm())
		src := metachaos.NewHPFArray(metachaos.Block2D(n, n, nprocs), p.Rank())
		dst := metachaos.NewHPFArray(metachaos.Block2D(n, n, nprocs), p.Rank())
		src.FillGlobal(func(c []int) float64 { return float64(c[0]) })
		sched, err := metachaos.ComputeSchedule(metachaos.SingleProgram(p.Comm()),
			&metachaos.Spec{Lib: metachaos.HPF, Obj: src,
				Set: metachaos.NewSetOfRegions(metachaos.NewSection([]int{0, 0}, []int{n / 2, n})), Ctx: ctx},
			&metachaos.Spec{Lib: metachaos.HPF, Obj: dst,
				Set: metachaos.NewSetOfRegions(metachaos.NewSection([]int{n / 2, 0}, []int{n, n})), Ctx: ctx},
			metachaos.Cooperation)
		if err != nil {
			panic(err)
		}
		sched.Move(src, dst)
	})
}

// traceRemap runs an irregular remap (translation-table traffic).
func traceRemap(run runner, nprocs int) *metachaos.Stats {
	const n = 1024
	return run(nprocs, func(p *mpsim.Proc) {
		ctx := core.NewCtx(p, p.Comm())
		// Stride permutation as the "bad" initial distribution.
		var mine []int32
		for g := p.Rank(); g < n; g += nprocs {
			mine = append(mine, int32((g*7)%n))
		}
		x, err := metachaos.NewChaosArray(ctx, mine)
		if err != nil {
			panic(err)
		}
		lo, hi := p.Rank()*n/nprocs, (p.Rank()+1)*n/nprocs
		contiguous := make([]int32, hi-lo)
		for g := lo; g < hi; g++ {
			contiguous[g-lo] = int32(g)
		}
		if _, err := chaoslib.Remap(ctx, x, contiguous); err != nil {
			panic(err)
		}
	})
}

func report(st *metachaos.Stats) {
	fmt.Printf("machine: %s\n", st.Machine)
	fmt.Printf("virtual makespan: %.3f ms\n", st.MakespanSeconds*1000)
	fmt.Printf("total: %d messages, %d bytes\n\n", st.TotalMsgs(), st.TotalBytes())

	fmt.Println("per-rank traffic:")
	for r := range st.PerRank {
		rs := st.PerRank[r]
		fmt.Printf("  rank %2d: sent %5d msgs / %8d B   recv %5d msgs / %8d B\n",
			r, rs.MsgsSent, rs.BytesSent, rs.MsgsRecv, rs.BytesRecv)
	}

	if st.TotalDrops()+st.TotalRetransmits() > 0 || reliabilityTouched(st) {
		fmt.Println("\nreliability (per rank):")
		for r := range st.PerRank {
			rs := st.PerRank[r]
			fmt.Printf("  rank %2d: drops %4d  rexmit %4d  dup-disc %4d  corrupt-disc %4d  timeouts %3d  failed-sends %3d\n",
				r, rs.Drops, rs.Retransmits, rs.DupsDiscarded, rs.CorruptDiscarded, rs.Timeouts, rs.FailedSends)
		}
		fmt.Printf("  total: %d drops, %d retransmits\n", st.TotalDrops(), st.TotalRetransmits())
	}

	fmt.Println("\nmessage matrix (from -> to: msgs/bytes):")
	keys := make([]metachaos.PairKey, 0, len(st.Pairs))
	for k := range st.Pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].From != keys[b].From {
			return keys[a].From < keys[b].From
		}
		return keys[a].To < keys[b].To
	})
	for _, k := range keys {
		ps := st.Pairs[k]
		if ps.Drops+ps.Retransmits+ps.DupsDiscarded > 0 {
			fmt.Printf("  %2d -> %2d: %4d msgs %8d B   (drops %d, rexmit %d, dup-disc %d)\n",
				k.From, k.To, ps.Msgs, ps.Bytes, ps.Drops, ps.Retransmits, ps.DupsDiscarded)
			continue
		}
		fmt.Printf("  %2d -> %2d: %4d msgs %8d B\n", k.From, k.To, ps.Msgs, ps.Bytes)
	}
}

// parseCrash parses one "rank@time" crash spec.
func parseCrash(spec string) (rank int, at float64, err error) {
	r, t, ok := strings.Cut(strings.TrimSpace(spec), "@")
	if !ok {
		return 0, 0, fmt.Errorf("want rank@time")
	}
	if rank, err = strconv.Atoi(r); err != nil || rank < 0 {
		return 0, 0, fmt.Errorf("bad rank %q", r)
	}
	if at, err = strconv.ParseFloat(t, 64); err != nil || at < 0 {
		return 0, 0, fmt.Errorf("bad time %q (virtual seconds)", t)
	}
	return rank, at, nil
}

// reportCrashes prints the run's fail-stop history: who died and when,
// how long the heartbeat detector took to notice, restarts, and what
// each rank's workload came to.
func reportCrashes(st *metachaos.Stats, outcomes []string) {
	if len(st.Crashes) == 0 {
		return
	}
	fmt.Println("\ncrash faults:")
	for _, c := range st.Crashes {
		fmt.Printf("  rank %2d died at %.3f ms", c.Rank, c.At*1000)
		if c.DetectedAt > 0 {
			fmt.Printf(", detected at %.3f ms (lag %.3f ms)", c.DetectedAt*1000, (c.DetectedAt-c.At)*1000)
		} else {
			fmt.Printf(", not detected before the run ended")
		}
		if c.RestartAt > 0 {
			fmt.Printf(", restarted at %.3f ms", c.RestartAt*1000)
		}
		fmt.Println()
	}
	var timeouts, failedSends int64
	for r := range st.PerRank {
		timeouts += st.PerRank[r].Timeouts
		failedSends += st.PerRank[r].FailedSends
	}
	fmt.Printf("  detector: %d crash(es) recorded; %d timeouts, %d abandoned sends across ranks\n",
		len(st.Crashes), timeouts, failedSends)
	for r, o := range outcomes {
		if o != "" {
			fmt.Printf("  rank %2d outcome: %s\n", r, o)
		}
	}
}

// reliabilityTouched reports whether any rank recorded reliability
// activity (covers runs where everything was clean but discarded).
func reliabilityTouched(st *metachaos.Stats) bool {
	for r := range st.PerRank {
		rs := st.PerRank[r]
		if rs.Drops+rs.Retransmits+rs.DupsDiscarded+rs.CorruptDiscarded+rs.Timeouts+rs.FailedSends > 0 {
			return true
		}
	}
	return false
}
