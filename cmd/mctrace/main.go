// Command mctrace runs a representative workload and prints its
// communication structure: the process-pair message matrix, per-rank
// traffic, and the virtual makespan.  It is the quickest way to see
// what a Meta-Chaos schedule actually puts on the wire.
//
// Usage:
//
//	mctrace -workload remap|section|clientserver [-procs N]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"metachaos"
	"metachaos/internal/chaoslib"
	"metachaos/internal/core"
	"metachaos/internal/exp"
)

func main() {
	workload := flag.String("workload", "section", "workload to trace: section, remap or clientserver")
	procs := flag.Int("procs", 4, "process count (per program for clientserver)")
	flag.Parse()

	var stats *metachaos.Stats
	switch *workload {
	case "section":
		stats = traceSection(*procs)
	case "remap":
		stats = traceRemap(*procs)
	case "clientserver":
		stats = traceClientServer(*procs)
	default:
		fmt.Fprintf(os.Stderr, "mctrace: unknown workload %q\n", *workload)
		os.Exit(2)
	}
	report(stats)
}

// traceSection runs a regular section copy between two block arrays.
func traceSection(nprocs int) *metachaos.Stats {
	const n = 64
	return metachaos.RunSPMD(metachaos.SP2(), nprocs, func(p *metachaos.Proc) {
		ctx := metachaos.NewCtx(p, p.Comm())
		src := metachaos.NewHPFArray(metachaos.Block2D(n, n, nprocs), p.Rank())
		dst := metachaos.NewHPFArray(metachaos.Block2D(n, n, nprocs), p.Rank())
		src.FillGlobal(func(c []int) float64 { return float64(c[0]) })
		sched, err := metachaos.ComputeSchedule(metachaos.SingleProgram(p.Comm()),
			&metachaos.Spec{Lib: metachaos.HPF, Obj: src,
				Set: metachaos.NewSetOfRegions(metachaos.NewSection([]int{0, 0}, []int{n / 2, n})), Ctx: ctx},
			&metachaos.Spec{Lib: metachaos.HPF, Obj: dst,
				Set: metachaos.NewSetOfRegions(metachaos.NewSection([]int{n / 2, 0}, []int{n, n})), Ctx: ctx},
			metachaos.Cooperation)
		if err != nil {
			panic(err)
		}
		sched.Move(src, dst)
	})
}

// traceRemap runs an irregular remap (translation-table traffic).
func traceRemap(nprocs int) *metachaos.Stats {
	const n = 1024
	return metachaos.RunSPMD(metachaos.SP2(), nprocs, func(p *metachaos.Proc) {
		ctx := core.NewCtx(p, p.Comm())
		// Stride permutation as the "bad" initial distribution.
		var mine []int32
		for g := p.Rank(); g < n; g += nprocs {
			mine = append(mine, int32((g*7)%n))
		}
		x, err := metachaos.NewChaosArray(ctx, mine)
		if err != nil {
			panic(err)
		}
		lo, hi := p.Rank()*n/nprocs, (p.Rank()+1)*n/nprocs
		contiguous := make([]int32, hi-lo)
		for g := lo; g < hi; g++ {
			contiguous[g-lo] = int32(g)
		}
		if _, err := chaoslib.Remap(ctx, x, contiguous); err != nil {
			panic(err)
		}
	})
}

// traceClientServer runs one vector through the Figure 10 workload
// via the experiment harness and reports its traffic.
func traceClientServer(serverProcs int) *metachaos.Stats {
	return exp.RunClientServerStats(exp.CSConfig{ClientProcs: 1, ServerProcs: serverProcs, Vectors: 1})
}

func report(st *metachaos.Stats) {
	fmt.Printf("machine: %s\n", st.Machine)
	fmt.Printf("virtual makespan: %.3f ms\n", st.MakespanSeconds*1000)
	fmt.Printf("total: %d messages, %d bytes\n\n", st.TotalMsgs(), st.TotalBytes())

	fmt.Println("per-rank traffic:")
	for r := range st.PerRank {
		rs := st.PerRank[r]
		fmt.Printf("  rank %2d: sent %5d msgs / %8d B   recv %5d msgs / %8d B\n",
			r, rs.MsgsSent, rs.BytesSent, rs.MsgsRecv, rs.BytesRecv)
	}

	fmt.Println("\nmessage matrix (from -> to: msgs/bytes):")
	keys := make([]metachaos.PairKey, 0, len(st.Pairs))
	for k := range st.Pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].From != keys[b].From {
			return keys[a].From < keys[b].From
		}
		return keys[a].To < keys[b].To
	})
	for _, k := range keys {
		ps := st.Pairs[k]
		fmt.Printf("  %2d -> %2d: %4d msgs %8d B\n", k.From, k.To, ps.Msgs, ps.Bytes)
	}
}
