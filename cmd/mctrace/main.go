// Command mctrace runs a representative workload and prints its
// communication structure: the process-pair message matrix, per-rank
// traffic, and the virtual makespan.  It is the quickest way to see
// what a Meta-Chaos schedule actually puts on the wire.
//
// With -fault the run goes over a deterministically faulty network;
// add -reliable to let the retransmitting transport recover, and the
// report grows drop/retransmit/duplicate/corruption counters.
//
// With -phases the run carries the virtual-time observability layer
// and the report ends with the per-phase breakdown (schedule build,
// pack, ship, wait, unpack, ...) that cmd/mcprof exports as timelines.
//
// Usage:
//
//	mctrace -workload remap|section|clientserver [-procs N]
//	mctrace -workload section -fault lossy -seed 7 -reliable
//	mctrace -workload section -phases
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"metachaos"
	"metachaos/internal/chaoslib"
	"metachaos/internal/core"
	"metachaos/internal/exp"
	"metachaos/internal/faultsim"
	"metachaos/internal/mpsim"
	"metachaos/internal/obs"
)

func main() {
	workload := flag.String("workload", "section", "workload to trace: section, remap or clientserver")
	procs := flag.Int("procs", 4, "process count (per program for clientserver)")
	fault := flag.String("fault", "none", "fault profile: none, mild, lossy or random")
	seed := flag.Uint64("seed", 1, "fault profile seed")
	reliable := flag.Bool("reliable", false, "enable the retransmitting reliable transport")
	phases := flag.Bool("phases", false, "attach the observability layer and print per-phase virtual-time totals")
	flag.Parse()

	prof, err := faultsim.ByName(*fault, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mctrace: %v\n", err)
		os.Exit(2)
	}
	var inj mpsim.FaultInjector
	if prof != nil {
		inj = prof
	}
	var rel *mpsim.Reliability
	if *reliable {
		rel = &mpsim.Reliability{}
	}
	var tr *obs.Tracer
	if *phases {
		tr = obs.NewTracer()
	}
	runSPMD := func(nprocs int, body func(p *mpsim.Proc)) *mpsim.Stats {
		return mpsim.Run(mpsim.Config{
			Machine:  mpsim.SP2(),
			Fault:    inj,
			Reliable: rel,
			Obs:      tr,
			Programs: []mpsim.ProgramSpec{{Name: "spmd", Procs: nprocs, Body: body}},
		})
	}

	var stats *metachaos.Stats
	switch *workload {
	case "section":
		stats = traceSection(runSPMD, *procs)
	case "remap":
		stats = traceRemap(runSPMD, *procs)
	case "clientserver":
		stats = exp.RunClientServerStats(exp.CSConfig{
			ClientProcs: 1, ServerProcs: *procs, Vectors: 1,
			Fault: inj, Reliable: *reliable, Obs: tr,
		})
	default:
		fmt.Fprintf(os.Stderr, "mctrace: unknown workload %q\n", *workload)
		os.Exit(2)
	}
	report(stats)
	if tr != nil {
		fmt.Println()
		if err := tr.WriteReport(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mctrace: %v\n", err)
			os.Exit(1)
		}
	}
}

type runner func(nprocs int, body func(p *mpsim.Proc)) *mpsim.Stats

// traceSection runs a regular section copy between two block arrays.
func traceSection(run runner, nprocs int) *metachaos.Stats {
	const n = 64
	return run(nprocs, func(p *mpsim.Proc) {
		ctx := metachaos.NewCtx(p, p.Comm())
		src := metachaos.NewHPFArray(metachaos.Block2D(n, n, nprocs), p.Rank())
		dst := metachaos.NewHPFArray(metachaos.Block2D(n, n, nprocs), p.Rank())
		src.FillGlobal(func(c []int) float64 { return float64(c[0]) })
		sched, err := metachaos.ComputeSchedule(metachaos.SingleProgram(p.Comm()),
			&metachaos.Spec{Lib: metachaos.HPF, Obj: src,
				Set: metachaos.NewSetOfRegions(metachaos.NewSection([]int{0, 0}, []int{n / 2, n})), Ctx: ctx},
			&metachaos.Spec{Lib: metachaos.HPF, Obj: dst,
				Set: metachaos.NewSetOfRegions(metachaos.NewSection([]int{n / 2, 0}, []int{n, n})), Ctx: ctx},
			metachaos.Cooperation)
		if err != nil {
			panic(err)
		}
		sched.Move(src, dst)
	})
}

// traceRemap runs an irregular remap (translation-table traffic).
func traceRemap(run runner, nprocs int) *metachaos.Stats {
	const n = 1024
	return run(nprocs, func(p *mpsim.Proc) {
		ctx := core.NewCtx(p, p.Comm())
		// Stride permutation as the "bad" initial distribution.
		var mine []int32
		for g := p.Rank(); g < n; g += nprocs {
			mine = append(mine, int32((g*7)%n))
		}
		x, err := metachaos.NewChaosArray(ctx, mine)
		if err != nil {
			panic(err)
		}
		lo, hi := p.Rank()*n/nprocs, (p.Rank()+1)*n/nprocs
		contiguous := make([]int32, hi-lo)
		for g := lo; g < hi; g++ {
			contiguous[g-lo] = int32(g)
		}
		if _, err := chaoslib.Remap(ctx, x, contiguous); err != nil {
			panic(err)
		}
	})
}

func report(st *metachaos.Stats) {
	fmt.Printf("machine: %s\n", st.Machine)
	fmt.Printf("virtual makespan: %.3f ms\n", st.MakespanSeconds*1000)
	fmt.Printf("total: %d messages, %d bytes\n\n", st.TotalMsgs(), st.TotalBytes())

	fmt.Println("per-rank traffic:")
	for r := range st.PerRank {
		rs := st.PerRank[r]
		fmt.Printf("  rank %2d: sent %5d msgs / %8d B   recv %5d msgs / %8d B\n",
			r, rs.MsgsSent, rs.BytesSent, rs.MsgsRecv, rs.BytesRecv)
	}

	if st.TotalDrops()+st.TotalRetransmits() > 0 || reliabilityTouched(st) {
		fmt.Println("\nreliability (per rank):")
		for r := range st.PerRank {
			rs := st.PerRank[r]
			fmt.Printf("  rank %2d: drops %4d  rexmit %4d  dup-disc %4d  corrupt-disc %4d  timeouts %3d  failed-sends %3d\n",
				r, rs.Drops, rs.Retransmits, rs.DupsDiscarded, rs.CorruptDiscarded, rs.Timeouts, rs.FailedSends)
		}
		fmt.Printf("  total: %d drops, %d retransmits\n", st.TotalDrops(), st.TotalRetransmits())
	}

	fmt.Println("\nmessage matrix (from -> to: msgs/bytes):")
	keys := make([]metachaos.PairKey, 0, len(st.Pairs))
	for k := range st.Pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].From != keys[b].From {
			return keys[a].From < keys[b].From
		}
		return keys[a].To < keys[b].To
	})
	for _, k := range keys {
		ps := st.Pairs[k]
		if ps.Drops+ps.Retransmits+ps.DupsDiscarded > 0 {
			fmt.Printf("  %2d -> %2d: %4d msgs %8d B   (drops %d, rexmit %d, dup-disc %d)\n",
				k.From, k.To, ps.Msgs, ps.Bytes, ps.Drops, ps.Retransmits, ps.DupsDiscarded)
			continue
		}
		fmt.Printf("  %2d -> %2d: %4d msgs %8d B\n", k.From, k.To, ps.Msgs, ps.Bytes)
	}
}

// reliabilityTouched reports whether any rank recorded reliability
// activity (covers runs where everything was clean but discarded).
func reliabilityTouched(st *metachaos.Stats) bool {
	for r := range st.PerRank {
		rs := st.PerRank[r]
		if rs.Drops+rs.Retransmits+rs.DupsDiscarded+rs.CorruptDiscarded+rs.Timeouts+rs.FailedSends > 0 {
			return true
		}
	}
	return false
}
