// Command benchdiff compares a benchmark run against a committed
// BENCH_<date>.json baseline and fails on performance regressions: a
// gated benchmark more than -max-regress slower in ns/op, any
// allocs/op increase (allocation counts are deterministic, so any
// growth is a real change), or a gated benchmark missing from the new
// run.  scripts/benchdiff.sh wires it into CI.
//
// The current run is read from a file argument or stdin ("-"), as
// either mcbench JSON or raw `go test -bench -benchmem` text (sniffed
// by the first byte):
//
//	go test -run '^$' -bench 'Table5' -benchmem -count 3 . | benchdiff -baseline BENCH_2026-08-06.json -
//	benchdiff -baseline BENCH_2026-08-06.json current.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"

	"metachaos/internal/benchfmt"
)

func main() {
	baseline := flag.String("baseline", "", "committed baseline snapshot (required)")
	filter := flag.String("filter", "Table5|MovePack|MoveOverlap", "regexp naming the gated benchmarks")
	maxRegress := flag.Float64("max-regress", 0.10, "allowed fractional ns/op growth before failing")
	zeroAlloc := flag.String("zero-alloc", "MovePack$|MoveOverlap$",
		"regexp naming benchmarks whose allocs/op must be exactly 0 (the pooled data plane's hard gate); empty disables")
	flag.Parse()

	if *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline is required")
		os.Exit(2)
	}
	match, err := regexp.Compile(*filter)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: bad -filter: %v\n", err)
		os.Exit(2)
	}
	var zeroMatch *regexp.Regexp
	if *zeroAlloc != "" {
		if zeroMatch, err = regexp.Compile(*zeroAlloc); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: bad -zero-alloc: %v\n", err)
			os.Exit(2)
		}
	}
	base, err := benchfmt.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	var in io.Reader
	switch arg := flag.Arg(0); arg {
	case "", "-":
		in = os.Stdin
	default:
		f, err := os.Open(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	cur, err := readCurrent(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: reading current run: %v\n", err)
		os.Exit(2)
	}
	if len(cur.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: current run has no benchmark results")
		os.Exit(2)
	}

	d := benchfmt.Diff(base, cur, match, *maxRegress)
	if len(d.Compared) == 0 && len(d.Missing) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: filter %q matches nothing in %s — an empty gate gates nothing\n", *filter, *baseline)
		os.Exit(2)
	}
	if base.CPU != "" && cur.CPU != "" && base.CPU != cur.CPU {
		fmt.Printf("note: baseline CPU %q != current CPU %q; ns/op comparison is cross-machine\n", base.CPU, cur.CPU)
	}
	if base.HostCPUs != 0 {
		fmt.Printf("baseline host: %d cpus, mpsim shards %s\n", base.HostCPUs, orAuto(base.MpsimShards))
	}
	if cur.HostCPUs != 0 && (cur.HostCPUs != base.HostCPUs || cur.MpsimShards != base.MpsimShards) {
		fmt.Printf("current host:  %d cpus, mpsim shards %s\n", cur.HostCPUs, orAuto(cur.MpsimShards))
	}
	// Raw go-test text carries no host metadata, so fall back to the
	// machine benchdiff itself is running on — the same machine that
	// just ran the benchmarks in every CI and local workflow.
	curCPUs := cur.HostCPUs
	if curCPUs == 0 {
		curCPUs = runtime.NumCPU()
	}
	if base.HostCPUs != 0 && base.HostCPUs != curCPUs {
		fmt.Printf("WARNING: baseline %s was recorded on a %d-cpu host but this run is on %d cpus.\n",
			*baseline, base.HostCPUs, curCPUs)
		fmt.Printf("WARNING: virtual-time costs are host-independent, but wall-clock ns/op is not;\n")
		fmt.Printf("WARNING: treat any ns/op delta below with suspicion and re-record the baseline\n")
		fmt.Printf("WARNING: (scripts/bench.sh -f) before trusting this gate on the new host shape.\n")
	}
	fmt.Printf("baseline %s, gate: ns/op +%.0f%%, allocs/op +1ppm\n", *baseline, *maxRegress*100)
	for _, c := range d.Compared {
		fmt.Printf("  %-28s ns/op %12.0f -> %12.0f (%+6.1f%%)   allocs/op %8.0f -> %8.0f\n",
			c.Name, c.BaseNs, c.NewNs, 100*(c.NewNs/c.BaseNs-1), c.BaseAllocs, c.NewAllocs)
	}
	for _, name := range d.Missing {
		fmt.Printf("  %-28s MISSING from current run\n", name)
	}
	// The pooled-move benchmarks carry a hard absolute gate on top of
	// the baseline diff: steady-state moves must allocate NOTHING.  A
	// baseline recorded with a leak must not grandfather it in.
	var zeroViolations []string
	if zeroMatch != nil {
		matched := false
		for name, r := range cur.Best() {
			if !zeroMatch.MatchString(name) {
				continue
			}
			matched = true
			if r.AllocsPerOp != 0 {
				zeroViolations = append(zeroViolations,
					fmt.Sprintf("%s: allocs/op = %v, want exactly 0 (zero-alloc gate)", name, r.AllocsPerOp))
			} else {
				fmt.Printf("  %-28s allocs/op 0 (zero-alloc gate ok)\n", name)
			}
		}
		if !matched {
			zeroViolations = append(zeroViolations,
				fmt.Sprintf("no current benchmark matches -zero-alloc %q — an empty gate gates nothing", *zeroAlloc))
		}
	}
	if !d.OK() || len(zeroViolations) > 0 {
		fmt.Println("FAIL: performance regressions:")
		for _, g := range d.Regressions {
			fmt.Printf("  %s\n", g)
		}
		for _, name := range d.Missing {
			fmt.Printf("  %s: gated benchmark missing from current run\n", name)
		}
		for _, v := range zeroViolations {
			fmt.Printf("  %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Println("OK: no regressions")
}

// orAuto renders the MPSIM_SHARDS setting, "" meaning automatic.
func orAuto(s string) string {
	if s == "" {
		return "auto"
	}
	return s
}

// readCurrent sniffs JSON (an mcbench snapshot) vs text (raw go test
// output) by the first non-space byte.
func readCurrent(r io.Reader) (*benchfmt.Report, error) {
	br := bufio.NewReader(r)
	for {
		b, err := br.Peek(1)
		if err != nil {
			return nil, fmt.Errorf("empty input: %w", err)
		}
		switch b[0] {
		case ' ', '\t', '\n', '\r':
			br.Discard(1)
			continue
		case '{':
			return benchfmt.Read(br)
		default:
			return benchfmt.ParseGotest(br)
		}
	}
}
