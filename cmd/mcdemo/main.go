// Command mcdemo gives a two-minute tour: it lists the registered
// data-parallel libraries, moves data between every pair of libraries
// that share an element width, and prints the message statistics that
// back the paper's aggregation claim.
package main

import (
	"fmt"

	"metachaos"
)

const n = 30

func main() {
	fmt.Println("registered data-parallel libraries:")
	for _, name := range registered() {
		fmt.Printf("  - %s\n", name)
	}
	fmt.Println()

	pairs := [][2]string{
		{"hpf", "chaos"},
		{"chaos", "mbparti"},
		{"mbparti", "hpf"},
		{"pcxx", "hpf"},
		{"chaos", "pcxx"},
		{"lparx", "hpf"},
		{"mbparti", "lparx"},
	}
	for _, pair := range pairs {
		demoPair(pair[0], pair[1])
	}
}

func registered() []string {
	// The registry is populated by the library packages' init
	// functions, which importing the root package triggers.
	return metachaosRegistered
}

var metachaosRegistered = func() []string {
	names := []string{}
	for _, n := range []string{"chaos", "hpf", "lparx", "mbparti", "pcxx"} {
		if _, err := metachaos.LookupLibrary(n); err == nil {
			names = append(names, n)
		}
	}
	return names
}()

// demoPair copies n elements from a srcKind-distributed structure to a
// dstKind-distributed one and reports correctness plus traffic.
func demoPair(srcKind, dstKind string) {
	const nprocs = 3
	ok := true
	stats := metachaos.RunSPMD(metachaos.SP2(), nprocs, func(p *metachaos.Proc) {
		ctx := metachaos.NewCtx(p, p.Comm())
		srcObj, srcSet := makeSide(ctx, p, srcKind, true)
		dstObj, dstSet := makeSide(ctx, p, dstKind, false)
		sched, err := metachaos.ComputeSchedule(metachaos.SingleProgram(p.Comm()),
			&metachaos.Spec{Lib: lib(srcKind), Obj: srcObj, Set: srcSet, Ctx: ctx},
			&metachaos.Spec{Lib: lib(dstKind), Obj: dstObj, Set: dstSet, Ctx: ctx},
			metachaos.Cooperation)
		if err != nil {
			panic(err)
		}
		sched.Move(srcObj, dstObj)
		if !verify(p, dstKind, dstObj) {
			ok = false
		}
	})
	status := "ok"
	if !ok {
		status = "MISMATCH"
	}
	fmt.Printf("%-8s -> %-8s  %s   (%3d msgs, %5d bytes, %.3f virtual ms)\n",
		srcKind, dstKind, status, stats.TotalMsgs(), stats.TotalBytes(), stats.MakespanSeconds*1000)
}

func lib(kind string) metachaos.LibraryIface {
	l, err := metachaos.LookupLibrary(kind)
	if err != nil {
		panic(err)
	}
	return l
}

// makeSide builds an n-element distributed structure of the given
// library flavour; sources hold value 3*g+1 at global element g.
func makeSide(ctx *metachaos.Ctx, p *metachaos.Proc, kind string, fill bool) (metachaos.DistObject, *metachaos.SetOfRegions) {
	nprocs := p.Size()
	switch kind {
	case "hpf":
		a := metachaos.NewHPFArray(metachaos.BlockVector(n, nprocs), p.Rank())
		if fill {
			a.FillGlobal(func(c []int) float64 { return float64(3*c[0] + 1) })
		}
		return a, metachaos.NewSetOfRegions(metachaos.FullSection(metachaos.Shape{n}))
	case "mbparti":
		a, err := metachaos.NewMBPartiArray(metachaos.BlockVector(n, nprocs), p.Rank(), 0)
		if err != nil {
			panic(err)
		}
		if fill {
			a.FillGlobal(func(c []int) float64 { return float64(3*c[0] + 1) })
		}
		return a, metachaos.NewSetOfRegions(metachaos.FullSection(metachaos.Shape{n}))
	case "chaos":
		var mine []int32
		for g := n - 1 - p.Rank(); g >= 0; g -= nprocs {
			mine = append(mine, int32(g))
		}
		a, err := metachaos.NewChaosArray(ctx, mine)
		if err != nil {
			panic(err)
		}
		if fill {
			a.FillGlobal(func(g int32) float64 { return float64(3*g + 1) })
		}
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(i)
		}
		return a, metachaos.NewSetOfRegions(metachaos.IndexRegion(idx))
	case "lparx":
		// Two patches covering [0, n) as a 1-D strip split unevenly.
		cut := n/3 + 1
		dec, err := metachaos.NewLPARXDecomposition(nprocs, []metachaos.LPARXPatch{
			{Lo: []int{0}, Hi: []int{cut}, Owner: 0},
			{Lo: []int{cut}, Hi: []int{n}, Owner: nprocs - 1},
		})
		if err != nil {
			panic(err)
		}
		g := metachaos.NewLPARXGrid(dec, p.Rank())
		if fill {
			g.FillGlobal(func(c []int) float64 { return float64(3*c[0] + 1) })
		}
		return g, metachaos.NewSetOfRegions(metachaos.BoxRegion{Lo: []int{0}, Hi: []int{n}})
	case "pcxx":
		c, err := metachaos.NewPCXXCollection(n, nprocs, 1, p.Rank())
		if err != nil {
			panic(err)
		}
		if fill {
			c.ForEachOwned(func(i int, elem []float64) { elem[0] = float64(3*i + 1) })
		}
		return c, metachaos.NewSetOfRegions(metachaos.RangeRegion{Lo: 0, Hi: n, Step: 1})
	}
	panic("unknown kind " + kind)
}

// verify checks that destination element g holds 3*g+1 for the
// elements the calling process owns.
func verify(p *metachaos.Proc, kind string, obj metachaos.DistObject) bool {
	want := func(g int) float64 { return float64(3*g + 1) }
	switch kind {
	case "hpf":
		a := obj.(*metachaos.HPFArray)
		lo, hi, _ := a.Dist().LocalBox(p.Rank())
		for g := lo[0]; g < hi[0]; g++ {
			if a.Get([]int{g}) != want(g) {
				return false
			}
		}
	case "mbparti":
		a := obj.(*metachaos.MBPartiArray)
		lo, hi, _ := a.Dist().LocalBox(p.Rank())
		for g := lo[0]; g < hi[0]; g++ {
			if a.Get([]int{g}) != want(g) {
				return false
			}
		}
	case "chaos":
		a := obj.(*metachaos.ChaosArray)
		for k, g := range a.Indices() {
			if a.GetLocal(k) != want(int(g)) {
				return false
			}
		}
	case "lparx":
		g := obj.(*metachaos.LPARXGrid)
		for i := 0; i < g.Dec().NumPatches(); i++ {
			pt := g.Dec().Patch(i)
			if pt.Owner != p.Rank() {
				continue
			}
			for x := pt.Lo[0]; x < pt.Hi[0]; x++ {
				if g.Get([]int{x}) != want(x) {
					return false
				}
			}
		}
	case "pcxx":
		c := obj.(*metachaos.PCXXCollection)
		okAll := true
		c.ForEachOwned(func(i int, elem []float64) {
			if elem[0] != want(i) {
				okAll = false
			}
		})
		return okAll
	}
	return true
}
