// Command mctables regenerates the paper's Tables 1-5 on the simulated
// machines and prints them next to the published numbers.
//
// Usage:
//
//	mctables            # all tables
//	mctables -table 2   # one table
package main

import (
	"flag"
	"fmt"
	"os"

	"metachaos/internal/exp"
)

func main() {
	table := flag.Int("table", 0, "table number to regenerate (1-5); 0 runs all")
	ablations := flag.Bool("ablations", false, "run the design-choice ablations instead of the paper tables")
	matrix := flag.Bool("matrix", false, "run the extension cross-library cost matrix")
	app := flag.Bool("app", false, "run the end-to-end Figure 1 application profile")
	csv := flag.Bool("csv", false, "emit comma-separated values instead of aligned text")
	jsonOut := flag.Bool("json", false, "emit one JSON object per table (JSON lines)")
	flag.Parse()

	render := func(t *exp.Table) string {
		switch {
		case *jsonOut:
			return t.JSON()
		case *csv:
			return t.CSV()
		}
		return t.Format()
	}

	if *app {
		fmt.Println(render(exp.Figure1Application()))
		return
	}
	if *matrix {
		e1a, e1b := exp.ExtensionMatrix()
		fmt.Println(render(e1a))
		fmt.Println(render(e1b))
		return
	}
	if *ablations {
		fmt.Println(render(exp.AblationAggregation()))
		fmt.Println(render(exp.AblationTTable()))
		fmt.Println(render(exp.AblationScheduleReuse()))
		fmt.Println(render(exp.AblationRLE()))
		fmt.Println(render(exp.AblationReliability()))
		fmt.Println(render(exp.AblationDtype()))
		return
	}

	run := func(n int) {
		switch n {
		case 1:
			fmt.Println(render(exp.Table1()))
		case 2:
			fmt.Println(render(exp.Table2()))
		case 3, 4:
			t3, t4 := exp.Tables34()
			if n == 3 {
				fmt.Println(render(t3))
			} else {
				fmt.Println(render(t4))
			}
		case 5:
			fmt.Println(render(exp.Table5()))
		default:
			fmt.Fprintf(os.Stderr, "mctables: no table %d (have 1-5)\n", n)
			os.Exit(2)
		}
	}

	if *table != 0 {
		run(*table)
		return
	}
	fmt.Println(render(exp.Table1()))
	fmt.Println(render(exp.Table2()))
	t3, t4 := exp.Tables34()
	fmt.Println(render(t3))
	fmt.Println(render(t4))
	fmt.Println(render(exp.Table5()))
}
