// Command mcbench converts `go test -bench -benchmem` output on stdin
// into a JSON benchmark record, capturing ns/op, B/op, allocs/op and
// every custom metric (the virtual-millisecond measurements the
// benchmarks report).  scripts/bench.sh uses it to append a dated
// BENCH_<date>.json snapshot so the performance trajectory — host time
// AND allocation counts — is tracked in the repository, and
// cmd/benchdiff gates CI against those snapshots.
//
//	go test -bench=. -benchmem | go run ./cmd/mcbench > BENCH_$(date +%F).json
package main

import (
	"fmt"
	"os"
	"runtime"
	"strings"

	"metachaos/internal/benchfmt"
)

func main() {
	rep, err := benchfmt.ParseGotest(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcbench: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "mcbench: no benchmark lines on stdin (pipe `go test -bench -benchmem` output in)")
		os.Exit(1)
	}
	// Host-shape metadata: snapshots recorded on different machines
	// (or with a pinned MPSIM_SHARDS) must say so.
	rep.HostCPUs = runtime.NumCPU()
	rep.MpsimShards = os.Getenv("MPSIM_SHARDS")
	// On a single-CPU host a -cpu sweep oversubscribes one core, so any
	// speedup@N ratio is scheduler noise, not parallel speedup: drop the
	// metric and record why instead of recording a misleading number.
	if rep.HostCPUs == 1 {
		dropped := false
		for _, r := range rep.Results {
			for unit := range r.Metrics {
				if strings.HasPrefix(unit, "speedup@") {
					delete(r.Metrics, unit)
					dropped = true
				}
			}
		}
		if dropped {
			rep.Notes = append(rep.Notes,
				"single-cpu host: speedup@N metrics omitted (a -cpu sweep on one core measures oversubscription, not parallel speedup)")
		}
	}
	if err := rep.Write(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "mcbench: %v\n", err)
		os.Exit(1)
	}
}
