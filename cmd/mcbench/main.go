// Command mcbench converts `go test -bench -benchmem` output on stdin
// into a JSON benchmark record, capturing ns/op, B/op, allocs/op and
// every custom metric (the virtual-millisecond measurements the
// benchmarks report).  scripts/bench.sh uses it to append a dated
// BENCH_<date>.json snapshot so the performance trajectory — host time
// AND allocation counts — is tracked in the repository.
//
//	go test -bench=. -benchmem | go run ./cmd/mcbench > BENCH_$(date +%F).json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full snapshot written to stdout.
type Report struct {
	Go      string   `json:"go,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	rep := Report{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"):
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "mcbench: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "mcbench: no benchmark lines on stdin (pipe `go test -bench -benchmem` output in)")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "mcbench: %v\n", err)
		os.Exit(1)
	}
}

// parseLine decodes one benchmark result line: a name, the iteration
// count, then (value, unit) pairs.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	// Strip the -<GOMAXPROCS> suffix go test appends to names.
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = val
		case "allocs/op":
			r.AllocsPerOp = val
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = val
		}
	}
	return r, true
}
