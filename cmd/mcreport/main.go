// Command mcreport regenerates EXPERIMENTS.md: it runs every table,
// figure and ablation and emits a markdown report of paper-vs-measured
// results.
//
//	go run ./cmd/mcreport > EXPERIMENTS.md
package main

import (
	"fmt"
	"strings"

	"metachaos/internal/exp"
)

func main() {
	fmt.Println(`# EXPERIMENTS — paper vs reproduction

Regenerated with ` + "`go run ./cmd/mcreport > EXPERIMENTS.md`" + `
(equivalently: ` + "`go run ./cmd/mctables`" + `, ` + "`go run ./cmd/mcfigures`" + `,
` + "`go run ./cmd/mctables -ablations`" + `).

All measurements are **virtual milliseconds** on the simulated machines
described in DESIGN.md (an IBM SP2 profile for Tables 1-5, a DEC Alpha
farm + ATM profile for Figures 10-15).  The reproduction does not chase
the paper's absolute numbers — the substrate is a calibrated simulator,
not the 1997 testbeds — but the comparative structure is the target:
who wins, by roughly what factor, how times scale with processes, and
where crossovers fall.  Each section lists the qualitative claims the
paper makes about its table or figure and how the reproduction bears
them out.`)
	fmt.Println()

	section := func(t *exp.Table, claims ...string) {
		fmt.Printf("## %s\n\n", t.ID)
		fmt.Println("```")
		fmt.Print(t.Format())
		fmt.Println("```")
		if len(claims) > 0 {
			fmt.Println("\nPaper claims checked:")
			for _, c := range claims {
				fmt.Printf("- %s\n", c)
			}
		}
		fmt.Println()
	}

	section(exp.Table1(),
		"inspector and executor times fall as processes are added [holds]",
		"executor scaling flattens as communication overheads grow relative to per-process work [holds: the drop from 8 to 16 processes is well below 2x]")

	section(exp.Table2(),
		"Meta-Chaos cooperation schedule cost is close to native CHAOS (both dominated by one distributed dereference of the irregular mesh) [holds: within ~10%]",
		"duplication costs about twice cooperation because each side is dereferenced twice [holds: ~2.1x at every process count]",
		"Meta-Chaos data copy does not exceed the native CHAOS copy, which pays an extra internal copy and an extra level of indirection [holds: MC copy is ~0.5-0.6x the CHAOS copy]")

	t3, t4 := exp.Tables34()
	section(t3,
		"schedule time is set by the irregular program's process count and nearly flat in Preg [holds: columns vary <1% across Preg rows]",
		"schedule time falls nearly linearly with Pirreg [holds: ~2x per doubling]")
	section(t4,
		"copy time is symmetric between the programs and limited by the smaller side [holds approximately: the diagonal dominates; our model under-weights the per-message costs that flattened the paper's Preg=2 row]")

	section(exp.Table5(),
		"Multiblock Parti builds schedules fastest; Meta-Chaos duplication is close; cooperation pays for its fragment routing [holds: parti < dup < coop]",
		"data copy times are essentially identical across the three methods [holds at 4+ processes]",
		"Meta-Chaos copies faster at 2 processes because it copies local elements directly while Parti stages them through a buffer [holds: ~0.6x at 2 processes]")

	section(exp.Figure10(),
		"best total time at eight server processes [holds]",
		"schedule time falls to about four server processes, then rises with ATM contention and all-to-all message count [holds]",
		"matrix send dominates the one-vector exchange [holds]")
	section(exp.Figure11())
	section(exp.Figure12())
	section(exp.Figure13(),
		"with twenty vectors the one-time overheads amortize and the eight-process server delivers a healthy speedup over client-local compute (paper: 4.5x) [holds: >3x in this reproduction]")
	section(exp.Figure14(),
		"schedule and matrix-send components are constant in the number of vectors; compute and vector-exchange grow linearly [holds]")
	section(exp.Figure15(),
		"a handful of matrix-vector multiplies amortize the server overhead for a sequential client [holds: 3-6 vectors]",
		"no break-even exists for a two-process client with a two-process server [holds: marked '-']")

	fmt.Println("## Ablations")
	fmt.Println()
	fmt.Println("Design choices DESIGN.md calls out, each against its alternative.")
	fmt.Println()
	for _, t := range []*exp.Table{
		exp.AblationAggregation(),
		exp.AblationTTable(),
		exp.AblationScheduleReuse(),
		exp.AblationRLE(),
		exp.AblationReliability(),
		exp.AblationDtype(),
	} {
		fmt.Printf("### %s\n\n```\n%s```\n\n", t.ID, t.Format())
	}

	fmt.Println("## Extension: cross-library cost matrix")
	fmt.Println()
	fmt.Println("Beyond the paper: every pairing of the five bound libraries")
	fmt.Println("(including the post-paper LPARX analogue) moving the same payload.")
	fmt.Println()
	e1a, e1b := exp.ExtensionMatrix()
	fmt.Printf("```\n%s```\n\n```\n%s```\n\n", e1a.Format(), e1b.Format())

	fmt.Println("## Extension: elastic recovery under fail-stop crashes")
	fmt.Println()
	fmt.Println("Beyond the paper: a server rank is killed mid-run; the virtual-time")
	fmt.Println("failure detector notices, the coupling shrinks to the survivors, state")
	fmt.Println("restores from a coordinated checkpoint, and the run finishes with a")
	fmt.Println("result bit-identical to the fault-free one.")
	fmt.Println()
	et := exp.ElasticTable()
	fmt.Printf("```\n%s```\n\n", et.Format())

	fmt.Println("## Extension: the whole Figure 1 application")
	fmt.Println()
	fmt.Println("End-to-end cost profile of the motivating coupled program: what")
	fmt.Println("share of a complete time step the Meta-Chaos interaction costs.")
	fmt.Println()
	fmt.Printf("```\n%s```\n\n", exp.Figure1Application().Format())

	fmt.Println(strings.TrimSpace(`
## Known deviations

- Absolute times run 2-5x below the paper's SP2 numbers: the dominant
  1997 cost (CHAOS translation-table dereference) is modeled at 8
  microseconds per lookup, which reproduces the relative structure but
  not the full slowness of the original hash-table implementation.
- Table 4's Preg=2 row declines with Pirreg instead of staying flat:
  the paper observed message-count growth exactly cancelling bandwidth
  gains; our per-message overheads on the SP2 profile are too small to
  cancel the parallelism.
- Figure 13's speedup is ~3.2x against the paper's 4.5x, within the
  tolerance expected from the matvec cost calibration.
`))
}
