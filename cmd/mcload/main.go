// Command mcload drives a live mcserved daemon: N tenant sessions ×
// M couplings each, streaming Move/MoveAdd/MoveReverse traffic with a
// steady or churning session profile.  Couplings are drawn from a
// fixed catalog shared by every tenant, so the daemon's cross-tenant
// schedule cache gets real reuse; with -check each tenant replays its
// op sequences through serve.Standalone and demands bit-identical
// result hashes — the multiplexed daemon must be indistinguishable
// from running alone.
//
//	mcload -network unix -addr /tmp/mcserved.sock -tenants 4 -moves 32 -check
//
// With -chaos R every tenant connection injects seeded wire faults
// (dropped and torn frames, lost replies, stalls) at rate R per I/O;
// the clients reconnect, resume their leased sessions and retry, and
// -check still demands bit-identical hashes.  -catalog big swaps in
// soak-scale pairs whose resident worlds cross the auto-sharding
// threshold (256 union ranks).
//
//	mcload -addr /tmp/mcserved.sock -tenants 4 -moves 32 -chaos 0.05 -check
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"time"

	"metachaos/internal/benchfmt"
	"metachaos/internal/serve"
)

// pair is one catalog entry: a coupling both sides of which every
// tenant declares identically (identical declarations are what make
// schedules shareable).
type pair struct {
	name     string
	src, dst serve.DistSpec
}

// catalog is the pair mix in effect for the run; -catalog selects it.
var catalog []pair

// stdCatalog is the default library/layout mix: HPF-to-Parti vectors,
// a 2-D redistribution, and a multi-word pC++ collection.
var stdCatalog = []pair{
	{
		name: "vec-hpf-parti",
		src:  serve.DistSpec{Library: "hpfrt", Layout: "blockvec", Shape: []int{240}, Procs: 3},
		dst:  serve.DistSpec{Library: "mbparti", Layout: "blockvec", Shape: []int{240}, Procs: 2},
	},
	{
		name: "mat-parti-hpf",
		src:  serve.DistSpec{Library: "mbparti", Layout: "block2d", Shape: []int{16, 16}, Procs: 3},
		dst:  serve.DistSpec{Library: "hpfrt", Layout: "rowblock", Shape: []int{16, 16}, Procs: 2},
	},
	{
		name: "coll-pcxx",
		src:  serve.DistSpec{Library: "pcxxrt", Layout: "roundrobin", Shape: []int{120}, Procs: 3, ElemWords: 2},
		dst:  serve.DistSpec{Library: "pcxxrt", Layout: "roundrobin", Shape: []int{120}, Procs: 2, ElemWords: 2},
	},
}

// bigCatalog is the soak-scale mix: both pairs stand up 256-union-rank
// resident worlds, which crosses the scheduler's auto-sharding
// threshold — the nightly soak drives it to prove the sharded daemon
// path stays bit-identical to Standalone.
var bigCatalog = []pair{
	{
		name: "vec-hpf-parti-256",
		src:  serve.DistSpec{Library: "hpfrt", Layout: "blockvec", Shape: []int{8192}, Procs: 160},
		dst:  serve.DistSpec{Library: "mbparti", Layout: "blockvec", Shape: []int{8192}, Procs: 96},
	},
	{
		name: "vec-parti-hpf-256",
		src:  serve.DistSpec{Library: "mbparti", Layout: "blockvec", Shape: []int{8192}, Procs: 96},
		dst:  serve.DistSpec{Library: "hpfrt", Layout: "blockvec", Shape: []int{8192}, Procs: 160},
	},
}

// moveKinds is the op mix, cycled per move index.
var moveKinds = []int{serve.OpMove, serve.OpMoveAdd, serve.OpMove, serve.OpMoveReverse}

// instance is one open-to-close life of a coupling: the ops it ran and
// the daemon's hash for each.  MoveAdd accumulates into the coupling's
// objects, so verification replays per instance — a churned reopen
// starts from fresh storage and therefore a fresh instance.
type instance struct {
	pair   int
	ops    []serve.ScriptOp
	hashes []uint64
}

type tenantResult struct {
	moves      int64
	retries    int64
	reconnects int64
	opRetries  int64
	err        error
	instances  []*instance
	// costs is the daemon leader's virtual-time cost of each move, in
	// execution order; the summary folds them into percentiles.
	costs []float64
}

func main() {
	var (
		network   = flag.String("network", "unix", "daemon network: unix or tcp")
		addr      = flag.String("addr", "/tmp/mcserved.sock", "daemon address")
		tenants   = flag.Int("tenants", 4, "concurrent tenant sessions")
		couplings = flag.Int("couplings", len(catalog), "couplings per tenant (capped at the catalog size)")
		moves     = flag.Int("moves", 24, "moves per tenant")
		seed      = flag.Int64("seed", 1, "base fill seed (pins the whole run)")
		profile   = flag.String("profile", "steady", "session profile: steady (hold couplings) or churn (reopen per move)")
		check     = flag.Bool("check", false, "replay every tenant's ops via serve.Standalone and compare hashes")
		catName   = flag.String("catalog", "std", "coupling catalog: std or big (soak-scale 256-rank sharded worlds)")
		chaos     = flag.Float64("chaos", 0, "wire-chaos fault rate per I/O (drops, torn writes, lost replies, stalls)")
		chaosSeed = flag.Uint64("chaos-seed", 1, "base seed for deterministic chaos (per-tenant streams derive from it)")
		jsonOut   = flag.Bool("json", false, "print the summary as benchfmt.ServeSummary JSON")
		snapshot  = flag.String("snapshot", "", "merge the summary into this BENCH_<date>.json snapshot")
	)
	flag.Parse()
	if *profile != "steady" && *profile != "churn" {
		fmt.Fprintf(os.Stderr, "mcload: unknown -profile %q\n", *profile)
		os.Exit(2)
	}
	switch *catName {
	case "std":
		catalog = stdCatalog
	case "big":
		catalog = bigCatalog
	default:
		fmt.Fprintf(os.Stderr, "mcload: unknown -catalog %q\n", *catName)
		os.Exit(2)
	}
	if *couplings < 1 || *couplings > len(catalog) {
		*couplings = len(catalog)
	}
	var chaosCfg *serve.ChaosConfig
	if *chaos > 0 {
		chaosCfg = &serve.ChaosConfig{
			Seed:          *chaosSeed,
			DropRate:      *chaos,
			TruncateRate:  *chaos,
			ReadAbortRate: *chaos,
			StallRate:     *chaos,
			Stall:         time.Millisecond,
		}
	}

	start := time.Now()
	results := make([]tenantResult, *tenants)
	var wg sync.WaitGroup
	for t := 0; t < *tenants; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			results[t] = runTenant(t, *network, *addr, *couplings, *moves, *seed, *profile, chaosCfg)
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total, retries, reconnects, opRetries int64
	for t := range results {
		if err := results[t].err; err != nil {
			fmt.Fprintf(os.Stderr, "mcload: tenant %d: %v\n", t, err)
			os.Exit(1)
		}
		total += results[t].moves
		retries += results[t].retries
		reconnects += results[t].reconnects
		opRetries += results[t].opRetries
	}

	// One extra session reads the daemon's stats.
	hitRate, backpressure := fetchStats(*network, *addr)

	verified := false
	if *check {
		if err := verify(results); err != nil {
			fmt.Fprintf(os.Stderr, "mcload: VERIFY FAILED: %v\n", err)
			os.Exit(1)
		}
		verified = true
	}

	sum := benchfmt.ServeSummary{
		Tenants:      *tenants,
		Couplings:    *couplings,
		Moves:        total,
		MovesPerSec:  float64(total) / elapsed.Seconds(),
		CacheHitRate: hitRate,
		Backpressure: backpressure,
		Verified:     verified,
		Reconnects:   reconnects,
		OpRetries:    opRetries,
	}
	for t := range results {
		sum.MoveLatency = append(sum.MoveLatency, tenantLatency(t, results[t].costs))
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(&sum)
	} else {
		fmt.Printf("mcload: tenants=%d couplings=%d moves=%d moves/sec=%.1f cache_hit_rate=%.2f backpressure=%d reconnects=%d op_retries=%d verified=%v\n",
			sum.Tenants, sum.Couplings, sum.Moves, sum.MovesPerSec, sum.CacheHitRate,
			sum.Backpressure, sum.Reconnects, sum.OpRetries, sum.Verified)
		for _, tl := range sum.MoveLatency {
			fmt.Printf("mcload: tenant %d move latency (vsec): p50=%.6f p95=%.6f p99=%.6f over %d moves\n",
				tl.Tenant, tl.P50, tl.P95, tl.P99, tl.Moves)
		}
	}
	if *snapshot != "" {
		if err := mergeSnapshot(*snapshot, &sum); err != nil {
			fmt.Fprintf(os.Stderr, "mcload: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mcload: recorded serve summary in %s\n", *snapshot)
	}
}

// runTenant runs one session's whole life against the daemon.
func runTenant(t int, network, addr string, couplings, moves int, seed int64, profile string, chaos *serve.ChaosConfig) (res tenantResult) {
	opts := serve.DialOptions{Network: network, Addr: addr, Tenant: fmt.Sprintf("tenant-%d", t)}
	if chaos != nil {
		// Each tenant gets its own decision stream so faults decorrelate.
		cfg := *chaos
		cfg.Seed += uint64(t) * 0x1000
		opts.Chaos = &cfg
		opts.MaxAttempts = 16
	}
	c, err := serve.DialWith(opts)
	if err != nil {
		res.err = err
		return res
	}
	defer c.Close()
	// Named return: these run after every return statement below, so the
	// summary sees the final recovery counts whichever way the run ends.
	defer func() {
		res.reconnects = int64(c.Reconnects())
		res.opRetries = int64(c.Retries())
	}()

	// Register both sides of every catalog pair once: dist id 2k is
	// pair k's source, 2k+1 its destination.
	for k, p := range catalog {
		if err := c.RegisterDist(2*k, p.src); err == nil {
			err = c.RegisterDist(2*k+1, p.dst)
		}
		if err != nil {
			res.err = fmt.Errorf("register %s: %w", p.name, err)
			return res
		}
	}
	live := make(map[int]*instance)
	ensureOpen := func(k int) (*instance, error) {
		if inst, ok := live[k]; ok {
			return inst, nil
		}
		if _, _, err := c.OpenCoupling(k, 2*k, 2*k+1); err != nil {
			return nil, err
		}
		inst := &instance{pair: k}
		live[k] = inst
		res.instances = append(res.instances, inst)
		return inst, nil
	}

	for m := 0; m < moves; m++ {
		k := (t + m) % couplings
		inst, err := ensureOpen(k)
		if err != nil {
			res.err = fmt.Errorf("open %s: %w", catalog[k].name, err)
			return res
		}
		kind := moveKinds[m%len(moveKinds)]
		mseed := seed + int64(t)*1000 + int64(m)
		var st serve.MoveStats
		for {
			st, err = c.Move(k, kind, mseed)
			if err != nil && errors.Is(err, serve.ErrBackpressure) {
				res.retries++
				time.Sleep(time.Millisecond)
				continue
			}
			break
		}
		if err != nil {
			res.err = fmt.Errorf("move on %s: %w", catalog[k].name, err)
			return res
		}
		res.moves++
		res.costs = append(res.costs, st.Cost)
		inst.ops = append(inst.ops, serve.ScriptOp{Kind: kind, Seed: mseed})
		inst.hashes = append(inst.hashes, st.Hash)
		if profile == "churn" {
			if err := c.CloseCoupling(k); err != nil {
				res.err = fmt.Errorf("close %s: %w", catalog[k].name, err)
				return res
			}
			delete(live, k)
		}
	}
	return res
}

// verify replays every coupling instance standalone and compares
// hashes move by move.  Identical (pair, op-sequence) instances — the
// common case when tenants run the same profile — replay once.
func verify(results []tenantResult) error {
	done := make(map[string][]uint64)
	for t := range results {
		for _, inst := range results[t].instances {
			key := fmt.Sprintf("%d/%+v", inst.pair, inst.ops)
			standalone, ok := done[key]
			if !ok {
				stats, err := serve.Standalone(catalog[inst.pair].src, catalog[inst.pair].dst, inst.ops)
				if err != nil {
					return fmt.Errorf("standalone replay of %s: %w", catalog[inst.pair].name, err)
				}
				standalone = make([]uint64, len(stats))
				for i := range stats {
					standalone[i] = stats[i].Hash
				}
				done[key] = standalone
			}
			if len(standalone) != len(inst.hashes) {
				return fmt.Errorf("tenant %d %s: %d standalone hashes vs %d served",
					t, catalog[inst.pair].name, len(standalone), len(inst.hashes))
			}
			for i := range inst.hashes {
				if inst.hashes[i] != standalone[i] {
					return fmt.Errorf("tenant %d %s move %d: served hash %016x != standalone %016x",
						t, catalog[inst.pair].name, i, inst.hashes[i], standalone[i])
				}
			}
		}
	}
	return nil
}

// tenantLatency folds one tenant's per-move virtual-time costs into
// nearest-rank percentiles.
func tenantLatency(t int, costs []float64) benchfmt.TenantMoveLatency {
	tl := benchfmt.TenantMoveLatency{Tenant: t, Moves: int64(len(costs))}
	if len(costs) == 0 {
		return tl
	}
	sorted := append([]float64(nil), costs...)
	sort.Float64s(sorted)
	rank := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	tl.P50, tl.P95, tl.P99 = rank(0.50), rank(0.95), rank(0.99)
	return tl
}

// fetchStats reads the daemon's cache hit rate and backpressure count.
func fetchStats(network, addr string) (hitRate float64, backpressure int64) {
	c, err := serve.Dial(network, addr, "mcload-stats")
	if err != nil {
		return 0, 0
	}
	defer c.Close()
	stats, err := c.Stats()
	if err != nil {
		return 0, 0
	}
	return stats["serve_cache_hit_rate"], int64(stats["serve_backpressure_total"])
}

// mergeSnapshot attaches the summary to an existing benchfmt snapshot.
func mergeSnapshot(path string, sum *benchfmt.ServeSummary) error {
	rep, err := benchfmt.ReadFile(path)
	if err != nil {
		return err
	}
	rep.Serve = sum
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return rep.Write(f)
}
