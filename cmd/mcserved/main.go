// Command mcserved is the Meta-Chaos coupling daemon: it listens on a
// TCP or unix-domain socket and serves tenant sessions that register
// distributions, open couplings and stream moves, multiplexing them
// onto shared resident worlds with cross-tenant schedule caching.
//
// Quick start (unix socket):
//
//	mcserved -network unix -addr /tmp/mcserved.sock
//	mcload   -network unix -addr /tmp/mcserved.sock -tenants 4 -moves 32
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"metachaos/internal/serve"
)

func main() {
	var (
		network  = flag.String("network", "unix", "listen network: unix or tcp")
		addr     = flag.String("addr", "/tmp/mcserved.sock", "listen address (socket path or host:port)")
		sessions = flag.Int("max-sessions", 0, "max concurrent tenant sessions (0 = default)")
		inflight = flag.Int("max-inflight", 0, "max moves in flight across all tenants (0 = default)")
		batch    = flag.Int("max-batch", 0, "max ops per world broadcast (0 = default)")
		flush    = flag.Duration("flush", 0, "batching window (0 = default, negative disables)")
		procs    = flag.Int("max-procs", 0, "max processes per distribution side (0 = default)")
		lease    = flag.Duration("lease", 0, "session lease TTL (0 = default, negative disables expiry)")
		journal  = flag.Int("max-journal", 0, "per-coupling respawn journal bound (0 = default, negative disables)")
		cacheCap = flag.Int("cache-entries", 0, "per-rank schedule cache bound with LRU eviction (0 = default, negative = unbounded)")
		panicAt  = flag.Int("panic-batch", 0, "chaos: first incarnation of every world panics at this batch (0 = off)")
		quiet    = flag.Bool("quiet", false, "suppress lifecycle logging")
	)
	flag.Parse()

	if *network == "unix" {
		// A stale socket file from a dead daemon blocks the listen.
		os.Remove(*addr)
	}
	logf := log.New(os.Stderr, "", log.LstdFlags).Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	var worldPanic func(srcProcs, dstProcs, incarnation int) int
	if *panicAt > 0 {
		worldPanic = func(_, _, inc int) int {
			if inc == 0 {
				return *panicAt
			}
			return 0
		}
	}
	srv := serve.NewServer(serve.Options{
		MaxSessions:  *sessions,
		MaxInflight:  *inflight,
		MaxBatch:     *batch,
		FlushWindow:  *flush,
		MaxProcs:     *procs,
		Lease:        *lease,
		MaxJournal:   *journal,
		CacheEntries: *cacheCap,
		WorldPanic:   worldPanic,
		Logf:         logf,
	})

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		logf("mcserved: %v, shutting down", s)
		srv.Close()
		if *network == "unix" {
			os.Remove(*addr)
		}
	}()

	ln, err := net.Listen(*network, *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcserved: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("mcserved: listening on %s %s\n", *network, *addr)
	if err := srv.Serve(ln); err != nil {
		fmt.Fprintf(os.Stderr, "mcserved: %v\n", err)
		os.Exit(1)
	}
	// Give the signal goroutine a beat to finish its cleanup message.
	time.Sleep(10 * time.Millisecond)
}
