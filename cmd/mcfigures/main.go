// Command mcfigures regenerates the series behind the paper's Figures
// 10-15 (the client/server experiments) on the simulated Alpha farm.
//
// Usage:
//
//	mcfigures             # all figures
//	mcfigures -figure 14  # one figure
package main

import (
	"flag"
	"fmt"
	"os"

	"metachaos/internal/exp"
)

func main() {
	figure := flag.Int("figure", 0, "figure number to regenerate (10-15); 0 runs all")
	csv := flag.Bool("csv", false, "emit comma-separated values instead of aligned text")
	jsonOut := flag.Bool("json", false, "emit one JSON object per figure (JSON lines)")
	plot := flag.Bool("plot", false, "render ASCII bar charts instead of tables")
	flag.Parse()

	render := func(t *exp.Table) string {
		switch {
		case *jsonOut:
			return t.JSON()
		case *csv:
			return t.CSV()
		case *plot:
			return t.Plot()
		}
		return t.Format()
	}

	figures := map[int]func() *exp.Table{
		10: exp.Figure10,
		11: exp.Figure11,
		12: exp.Figure12,
		13: exp.Figure13,
		14: exp.Figure14,
		15: exp.Figure15,
	}
	if *figure != 0 {
		f, ok := figures[*figure]
		if !ok {
			fmt.Fprintf(os.Stderr, "mcfigures: no figure %d (have 10-15)\n", *figure)
			os.Exit(2)
		}
		fmt.Println(render(f()))
		return
	}
	for n := 10; n <= 15; n++ {
		fmt.Println(render(figures[n]()))
	}
}
