// Command mcprof profiles a workload on the virtual clock and exports
// its span timeline.  Runs are deterministic, so the same invocation
// always produces byte-identical output.
//
// Formats:
//
//	chrome    — trace-event JSON for chrome://tracing / Perfetto / speedscope
//	collapsed — collapsed stacks for flamegraph.pl / inferno
//	phases    — plain-text per-phase totals, counters and histograms
//
// Usage:
//
//	mcprof -workload figure10 -format chrome -o trace.json
//	mcprof -workload section -procs 8 -iters 10 -format collapsed | flamegraph.pl > flame.svg
//	mcprof -workload figure10 -server-procs 8 -format phases
//	mcprof -workload elastic -server-procs 4 -seed 7 -format phases
//
// The elastic workload is the crash-recovery experiment: a server rank
// dies mid-run, and the timeline carries the crash.detect, group.shrink,
// ckpt.save/restore and move.retry spans of the recovery path.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"metachaos/internal/exp"
	"metachaos/internal/obs"
)

func main() {
	workload := flag.String("workload", "figure10", "workload to profile: figure10, section or elastic")
	procs := flag.Int("procs", 4, "process count (section workload)")
	serverProcs := flag.Int("server-procs", 2, "server process count (figure10 and elastic workloads)")
	vectors := flag.Int("vectors", 1, "vectors shipped through the coupling (figure10 workload)")
	size := flag.Int("n", 256, "mesh dimension (section workload)")
	iters := flag.Int("iters", 4, "schedule reuses (section workload) or solver iterations (elastic)")
	seed := flag.Uint64("seed", 7, "crash-site seed (elastic workload)")
	format := flag.String("format", "chrome", "output format: chrome, collapsed or phases")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var tr *obs.Tracer
	switch *workload {
	case "figure10":
		tr, _ = exp.ProfileFigure10(*serverProcs, *vectors)
	case "section":
		tr = exp.ProfileSection(*size, *procs, *iters)
	case "elastic":
		var res exp.ElasticResult
		tr, res = exp.ProfileElastic(*serverProcs, *iters, *seed)
		for _, c := range res.Crashes {
			fmt.Fprintf(os.Stderr, "mcprof: rank %d died at %.3fms, detected at %.3fms; %d shrink(s), %d restore(s), %d server(s) finished\n",
				c.Rank, c.At*1000, c.DetectedAt*1000, res.Shrinks, res.Restores, res.Survivors)
		}
	default:
		fmt.Fprintf(os.Stderr, "mcprof: unknown workload %q\n", *workload)
		os.Exit(2)
	}
	if n := tr.OpenSpans(); n != 0 {
		fmt.Fprintf(os.Stderr, "mcprof: %d spans left open after the run\n", n)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcprof: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	var err error
	switch *format {
	case "chrome":
		err = tr.WriteChromeTrace(w)
	case "collapsed":
		err = tr.WriteCollapsed(w)
	case "phases":
		err = tr.WriteReport(w)
	default:
		fmt.Fprintf(os.Stderr, "mcprof: unknown format %q\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcprof: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "mcprof: wrote %s (%d spans)\n", *out, tr.SpanCount())
	}
}
