#!/bin/sh
# Run the benchmark suite with allocation counting and record a dated
# JSON snapshot (BENCH_<date>.json) via cmd/mcbench.  Refuses to
# overwrite an existing snapshot unless -f is given, so a committed
# baseline cannot be clobbered by accident.  Extra arguments are passed
# to `go test` (e.g. -benchtime 5x, -bench 'Move').
#
# Usage:
#   scripts/bench.sh [-f] [go test args...]
set -eu
cd "$(dirname "$0")/.."

force=
if [ "${1:-}" = "-f" ]; then
	force=1
	shift
fi
out="BENCH_$(date +%F).json"
if [ -e "$out" ] && [ -z "$force" ]; then
	echo "bench: $out already exists; pass -f to overwrite it" >&2
	exit 1
fi
# The main suite runs serially; the sharded-scheduler scaling
# benchmark then runs as a -cpu sweep (its shard count follows
# GOMAXPROCS).  -benchtime 3x forces a real re-run per -cpu value: a
# one-iteration run would be satisfied by the framework's calibration
# pass, which executes before GOMAXPROCS is pinned and would mislabel
# the first variant.  Both outputs land in one snapshot.
#
# On a single-CPU host the multi-core sweep values would only measure
# oversubscription, so the sweep collapses to -cpu 1 and no speedup@N
# metric is recorded (cmd/mcbench drops any that sneak through and
# annotates the snapshot).
ncpu="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
cpus="1,2,4"
if [ "$ncpu" -le 1 ]; then
	cpus="1"
	echo "bench: single-cpu host; skipping the parallel-speedup sweep" >&2
fi
{
	go test -run '^$' -bench . -benchmem "$@" . &&
	go test -run '^$' -bench '^BenchmarkFigure10Parallel$' -benchmem \
		-benchtime 3x -cpu "$cpus" .
} | tee /dev/stderr | go run ./cmd/mcbench > "$out"
echo "wrote $out" >&2

# Attach a coupling-service load summary to the snapshot: run mcserved
# on a throwaway unix socket, drive it with a pinned-seed verified
# mcload pass, and merge the summary into the JSON just written.
sock="$(mktemp -u /tmp/mcserved.bench.XXXXXX.sock)"
go build -o /tmp/mcserved.bench ./cmd/mcserved
go build -o /tmp/mcload.bench ./cmd/mcload
/tmp/mcserved.bench -addr "$sock" -quiet &
served=$!
# Kill and reap the daemon on ANY exit — including set -e failures and
# runner cancellation (INT/TERM), which bypass a plain EXIT trap in
# POSIX sh — so CI never leaks a resident daemon or a stale socket.
cleanup() {
	kill "$served" 2>/dev/null || true
	wait "$served" 2>/dev/null || true
	rm -f "$sock"
}
trap cleanup EXIT
trap 'cleanup; trap - EXIT; exit 130' INT
trap 'cleanup; trap - EXIT; exit 143' TERM
for _ in $(seq 50); do [ -S "$sock" ] && break; sleep 0.1; done
[ -S "$sock" ] || { echo "bench: mcserved never came up" >&2; exit 1; }
/tmp/mcload.bench -addr "$sock" -tenants 4 -moves 48 -seed 1 -check \
	-snapshot "$out" >&2
kill "$served" 2>/dev/null
wait "$served" 2>/dev/null || true
