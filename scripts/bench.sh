#!/bin/sh
# Run the benchmark suite with allocation counting and record a dated
# JSON snapshot (BENCH_<date>.json) via cmd/mcbench.  Refuses to
# overwrite an existing snapshot unless -f is given, so a committed
# baseline cannot be clobbered by accident.  Extra arguments are passed
# to `go test` (e.g. -benchtime 5x, -bench 'Move').
#
# Usage:
#   scripts/bench.sh [-f] [go test args...]
set -eu
cd "$(dirname "$0")/.."

force=
if [ "${1:-}" = "-f" ]; then
	force=1
	shift
fi
out="BENCH_$(date +%F).json"
if [ -e "$out" ] && [ -z "$force" ]; then
	echo "bench: $out already exists; pass -f to overwrite it" >&2
	exit 1
fi
# The main suite runs serially; the sharded-scheduler scaling
# benchmark then runs as a -cpu sweep (its shard count follows
# GOMAXPROCS).  -benchtime 3x forces a real re-run per -cpu value: a
# one-iteration run would be satisfied by the framework's calibration
# pass, which executes before GOMAXPROCS is pinned and would mislabel
# the first variant.  Both outputs land in one snapshot.
{
	go test -run '^$' -bench . -benchmem "$@" . &&
	go test -run '^$' -bench '^BenchmarkFigure10Parallel$' -benchmem \
		-benchtime 3x -cpu 1,2,4 .
} | tee /dev/stderr | go run ./cmd/mcbench > "$out"
echo "wrote $out" >&2
