#!/bin/sh
# Run the benchmark suite with allocation counting and record a dated
# JSON snapshot (BENCH_<date>.json) via cmd/mcbench.  Extra arguments
# are passed to `go test` (e.g. -benchtime 5x, -bench 'Move').
set -eu
cd "$(dirname "$0")/.."

out="BENCH_$(date +%F).json"
go test -run '^$' -bench . -benchmem "$@" . | tee /dev/stderr | go run ./cmd/mcbench > "$out"
echo "wrote $out" >&2
