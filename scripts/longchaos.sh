#!/bin/sh
# Chaos soak: the chaos suite across many seeds, rotating through every
# fault profile — message faults (mild/lossy/random), fail-stop
# crashes (crashy/flaky) and elastic joins (growth) alike.  Failing regimes are recorded in the
# -out file together with their logs, so a nightly failure reproduces
# locally with a one-liner:
#
#   scripts/chaos.sh -seed <seed> -profile <profile>
#
# Usage:
#   scripts/longchaos.sh                 # 100 seeds
#   scripts/longchaos.sh -seeds 20 -out failures.txt
set -u
cd "$(dirname "$0")/.."

seeds=100
out=longchaos-failures.txt
while [ $# -gt 0 ]; do
	case "$1" in
	-seeds)
		seeds="$2"
		shift 2
		;;
	-out)
		out="$2"
		shift 2
		;;
	*)
		echo "usage: scripts/longchaos.sh [-seeds N] [-out FILE]" >&2
		exit 2
		;;
	esac
done

profiles="lossy mild random crashy flaky growth"
nprof=6
: >"$out"
fail=0
run=0
seed=1
while [ "$seed" -le "$seeds" ]; do
	i=$((seed % nprof + 1))
	profile=$(echo "$profiles" | cut -d' ' -f"$i")
	run=$((run + 1))
	log=$(mktemp)
	if CHAOS_SEED="$seed" CHAOS_PROFILE="$profile" \
		go test -count=1 -run Chaos ./internal/crosstest/ ./internal/exp/ >"$log" 2>&1; then
		echo "longchaos: seed=$seed profile=$profile OK" >&2
	else
		fail=$((fail + 1))
		{
			echo "=== seed=$seed profile=$profile  (reproduce: scripts/chaos.sh -seed $seed -profile $profile)"
			cat "$log"
			echo
		} >>"$out"
		echo "longchaos: seed=$seed profile=$profile FAIL" >&2
	fi
	rm -f "$log"
	seed=$((seed + 1))
done

if [ "$fail" -gt 0 ]; then
	echo "longchaos: $fail of $run regimes failed; see $out" >&2
	exit 1
fi
rm -f "$out"
echo "longchaos: all $run regimes passed" >&2
