#!/bin/sh
# CI perf-regression gate: re-run the gated benchmarks (Table5,
# MovePack, MoveOverlap, ScheduleRepair) and compare against a committed BENCH_<date>.json
# snapshot via cmd/benchdiff.  Fails on more than 10% ns/op growth or
# allocs/op growth beyond runtime jitter (one per million) on a gated
# benchmark.
#
# Usage:
#   scripts/benchdiff.sh                        # newest BENCH_*.json
#   scripts/benchdiff.sh BENCH_2026-08-06.json  # explicit baseline
#   BENCH_COUNT=5 scripts/benchdiff.sh          # more repeats, less noise
set -eu
cd "$(dirname "$0")/.."

filter='Table5|MovePack|MoveOverlap|ScheduleRepair'
count="${BENCH_COUNT:-3}"
if [ $# -gt 0 ]; then
	baseline="$1"
else
	baseline=$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1)
fi
if [ -z "$baseline" ] || [ ! -f "$baseline" ]; then
	echo "benchdiff: no BENCH_*.json baseline found (record one with scripts/bench.sh)" >&2
	exit 2
fi
echo "benchdiff: baseline $baseline, count $count" >&2
go test -run '^$' -bench "$filter" -benchmem -count "$count" . |
	go run ./cmd/benchdiff -baseline "$baseline" -filter "$filter" -
