#!/bin/sh
# Coupling-service smoke test: boot mcserved on a throwaway unix
# socket, drive it with a pinned-seed mcload run that replays every
# tenant's op sequence through serve.Standalone (bit-identical hashes
# required), and assert the cross-tenant schedule cache actually got
# hits.  Everything is pinned, so a failure reproduces locally with
# exactly this script.
#
# Usage: scripts/serve_smoke.sh
set -eu
cd "$(dirname "$0")/.."

sock="$(mktemp -u /tmp/mcserved.smoke.XXXXXX.sock)"
summary="$(mktemp /tmp/mcload.smoke.XXXXXX.json)"

go build -o /tmp/mcserved.smoke ./cmd/mcserved
go build -o /tmp/mcload.smoke ./cmd/mcload

/tmp/mcserved.smoke -network unix -addr "$sock" &
served=$!
# Kill and reap the daemon on ANY exit — including set -e failures and
# runner cancellation (INT/TERM), which bypass a plain EXIT trap in
# POSIX sh — so CI never leaks a resident daemon or a stale socket.
cleanup() {
	kill "$served" 2>/dev/null || true
	wait "$served" 2>/dev/null || true
	rm -f "$sock" "$summary"
}
trap cleanup EXIT
trap 'cleanup; trap - EXIT; exit 130' INT
trap 'cleanup; trap - EXIT; exit 143' TERM
for _ in $(seq 50); do [ -S "$sock" ] && break; sleep 0.1; done
[ -S "$sock" ] || { echo "serve_smoke: daemon never came up" >&2; exit 1; }

# Steady profile: tenants hold couplings open and stream moves.
/tmp/mcload.smoke -network unix -addr "$sock" \
	-tenants 4 -moves 32 -seed 20260809 -profile steady -check \
	-json > "$summary"
cat "$summary" >&2

# Churn profile: couplings close and reopen per move, exercising warm
# reopens and fresh-object semantics under the same verification.
/tmp/mcload.smoke -network unix -addr "$sock" \
	-tenants 3 -moves 18 -seed 20260809 -profile churn -check >&2

# The steady run's summary must show verified hashes and real schedule
# reuse: with 4 tenants declaring the same 3 catalog pairs, most opens
# must come out of the shared cache.
grep -q '"verified": true' "$summary" || {
	echo "serve_smoke: summary does not say verified" >&2; exit 1; }
hit=$(sed -n 's/.*"cache_hit_rate": \([0-9.]*\).*/\1/p' "$summary")
case "$hit" in
""|0|0.0) echo "serve_smoke: cache hit rate is $hit, want > 0" >&2; exit 1 ;;
esac

kill "$served" 2>/dev/null
wait "$served" 2>/dev/null || true

# Chaos leg: a fresh daemon rigged to panic its first world at batch 4
# (-flush -1ns so every op is its own batch), driven through seeded
# wire faults.  The clients must reconnect/resume/retry their way to
# bit-identical hashes, and the run must actually have exercised
# recovery (reconnects > 0).
csock="$(mktemp -u /tmp/mcserved.chaos.XXXXXX.sock)"
csummary="$(mktemp /tmp/mcload.chaos.XXXXXX.json)"
/tmp/mcserved.smoke -network unix -addr "$csock" -panic-batch 4 -flush -1ns -quiet &
cserved=$!
cleanup2() {
	kill "$cserved" 2>/dev/null || true
	wait "$cserved" 2>/dev/null || true
	rm -f "$csock" "$csummary"
}
trap 'cleanup2; cleanup' EXIT
trap 'cleanup2; cleanup; trap - EXIT; exit 130' INT
trap 'cleanup2; cleanup; trap - EXIT; exit 143' TERM
for _ in $(seq 50); do [ -S "$csock" ] && break; sleep 0.1; done
[ -S "$csock" ] || { echo "serve_smoke: chaos daemon never came up" >&2; exit 1; }

/tmp/mcload.smoke -network unix -addr "$csock" \
	-tenants 3 -moves 16 -seed 20260809 -chaos 0.05 -chaos-seed 20260809 -check \
	-json > "$csummary"
cat "$csummary" >&2
grep -q '"verified": true' "$csummary" || {
	echo "serve_smoke: chaos summary does not say verified" >&2; exit 1; }
rec=$(sed -n 's/.*"reconnects": \([0-9]*\).*/\1/p' "$csummary")
case "$rec" in
""|0) echo "serve_smoke: chaos run had $rec reconnects, want > 0" >&2; exit 1 ;;
esac

echo "serve_smoke: OK (cache hit rate $hit, hashes verified; chaos leg: $rec reconnects, hashes verified)" >&2
