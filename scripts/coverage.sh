#!/bin/sh
# Coverage gate: run the full test suite with statement coverage and
# fail if the total drops below the recorded baseline.  The profile is
# left in coverage.out for inspection (and CI uploads it as an
# artifact).
#
# Usage:
#   scripts/coverage.sh            # default baseline
#   COVER_MIN=76.0 scripts/coverage.sh
set -eu
cd "$(dirname "$0")/.."

# Baseline recorded 2026-08-06 at 75.4% total; the gate sits slightly
# below to absorb line-count drift from unrelated edits.  Raise it as
# coverage grows — never lower it to get a change in.
min="${COVER_MIN:-74.0}"

go test -coverprofile=coverage.out ./...
total=$(go tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
echo "coverage: total ${total}% (baseline ${min}%)"
if awk -v t="$total" -v m="$min" 'BEGIN { exit !(t + 0 < m + 0) }'; then
	echo "coverage: total ${total}% fell below the ${min}% baseline" >&2
	exit 1
fi
