#!/bin/sh
# Nightly coupling-service soak: boot mcserved with room for the big
# catalog (160-process sides -> 256-union-rank resident worlds, which
# auto-shard the scheduler) and drive it with verified mcload passes.
# Two legs:
#
#   1. fault-free: steady + churn profiles on the big catalog, -check
#      demanding bit-identical hashes vs serve.Standalone;
#   2. chaos: a fresh daemon whose first world incarnation is rigged to
#      panic, under seeded wire faults — respawn, journal replay,
#      reconnect and dedup all cross the sharded path, still verified.
#
# Every seed is pinned, so a failing regime reproduces locally with
# exactly the line written to the -out file.
#
# Usage: scripts/serve_soak.sh [-out failures.txt]
set -eu
cd "$(dirname "$0")/.."

out=
if [ "${1:-}" = "-out" ]; then
	out="$2"
	shift 2
fi
fail() {
	echo "serve_soak: FAIL: $1" >&2
	if [ -n "$out" ]; then
		{ echo "$1"; echo "reproduce: $2"; } >> "$out"
	fi
	exit 1
}

go build -o /tmp/mcserved.soak ./cmd/mcserved
go build -o /tmp/mcload.soak ./cmd/mcload

sock="$(mktemp -u /tmp/mcserved.soak.XXXXXX.sock)"
/tmp/mcserved.soak -network unix -addr "$sock" -max-procs 160 -quiet &
served=$!
csock=
cserved=
cleanup() {
	if [ -n "$served" ]; then
		kill "$served" 2>/dev/null || true
		wait "$served" 2>/dev/null || true
	fi
	if [ -n "$cserved" ]; then
		kill "$cserved" 2>/dev/null || true
		wait "$cserved" 2>/dev/null || true
	fi
	rm -f "$sock" "$csock"
}
trap cleanup EXIT
trap 'cleanup; trap - EXIT; exit 130' INT
trap 'cleanup; trap - EXIT; exit 143' TERM
for _ in $(seq 50); do [ -S "$sock" ] && break; sleep 0.1; done
[ -S "$sock" ] || fail "daemon never came up" "scripts/serve_soak.sh"

steady="/tmp/mcload.soak -network unix -addr $sock -catalog big -tenants 4 -moves 24 -seed 20260809 -profile steady -check"
$steady >&2 || fail "steady big-catalog soak hash mismatch" "$steady"
churn="/tmp/mcload.soak -network unix -addr $sock -catalog big -tenants 3 -moves 12 -seed 20260810 -profile churn -check"
$churn >&2 || fail "churn big-catalog soak hash mismatch" "$churn"
kill "$served" 2>/dev/null
wait "$served" 2>/dev/null || true
served=

csock="$(mktemp -u /tmp/mcserved.soak-chaos.XXXXXX.sock)"
/tmp/mcserved.soak -network unix -addr "$csock" -max-procs 160 \
	-panic-batch 6 -flush -1ns -quiet &
cserved=$!
for _ in $(seq 50); do [ -S "$csock" ] && break; sleep 0.1; done
[ -S "$csock" ] || fail "chaos daemon never came up" "scripts/serve_soak.sh"
chaos="/tmp/mcload.soak -network unix -addr $csock -catalog big -tenants 3 -moves 12 -seed 20260811 -chaos 0.04 -chaos-seed 20260811 -check"
$chaos >&2 || fail "chaos big-catalog soak hash mismatch or unrecovered fault" "$chaos"

echo "serve_soak: OK (fault-free + chaos legs verified on 256-rank sharded worlds)" >&2
