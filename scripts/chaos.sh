#!/bin/sh
# Chaos harness: the cross-library sweep and the Figure 10 workload on
# a deterministically faulty network with reliable transport, asserting
# bit-identical results against fault-free runs.  The crashy and flaky
# profiles add fail-stop faults: the crash sweep and the elastic
# recovery experiment assert detection, group shrink and deterministic
# degraded replay on top.  The growth profile adds elastic joins: the
# scale-out experiment asserts O(delta) schedule repair and
# bit-identical results while ranks enter the running world.
#
# Usage:
#   scripts/chaos.sh                     # default seed 1, lossy profile
#   scripts/chaos.sh -seed 7 -profile mild
#   scripts/chaos.sh -seed 3 -profile random -v
#   scripts/chaos.sh -seed 7 -profile crashy
#   scripts/chaos.sh -seed 7 -profile growth
set -eu
cd "$(dirname "$0")/.."

seed=1
profile=lossy
verbose=
while [ $# -gt 0 ]; do
	case "$1" in
	-seed)
		seed="$2"
		shift 2
		;;
	-profile)
		profile="$2"
		shift 2
		;;
	-v)
		verbose=-v
		shift
		;;
	*)
		echo "usage: scripts/chaos.sh [-seed N] [-profile mild|lossy|random|crashy|flaky|growth] [-v]" >&2
		exit 2
		;;
	esac
done

echo "chaos: seed=$seed profile=$profile" >&2
CHAOS_SEED="$seed" CHAOS_PROFILE="$profile" \
	go test $verbose -run Chaos ./internal/crosstest/ ./internal/exp/
echo "chaos: OK" >&2
