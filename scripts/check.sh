#!/bin/sh
# Repository health gate: formatting, vet, static analysis, the full
# test suite under the race detector, and the codec fuzz seed corpus.
# Run via `make check` or directly.
#
# staticcheck and govulncheck run when installed and are skipped with a
# note otherwise; set REQUIRE_LINT=1 (CI does) to make their absence a
# failure instead.
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
elif [ -n "${REQUIRE_LINT:-}" ]; then
	echo "check: staticcheck required (REQUIRE_LINT set) but not installed" >&2
	exit 1
else
	echo "check: staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)" >&2
fi

if command -v govulncheck >/dev/null 2>&1; then
	govulncheck ./...
elif [ -n "${REQUIRE_LINT:-}" ]; then
	echo "check: govulncheck required (REQUIRE_LINT set) but not installed" >&2
	exit 1
else
	echo "check: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)" >&2
fi

go test -race ./...
# Codec wire-format fuzz targets: the seed corpus must pass on every
# change (longer fuzzing runs use `go test -fuzz=Fuzz ./internal/codec/`
# or the CI fuzz-smoke job).
go test -run '^Fuzz' ./internal/codec/
echo "check: OK"
