#!/bin/sh
# Repository health gate: formatting, vet, and the full test suite
# under the race detector.  Run via `make check` or directly.
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go test -race ./...
# Codec wire-format fuzz targets: the seed corpus must pass on every
# change (longer fuzzing runs use `go test -fuzz=Fuzz ./internal/codec/`).
go test -run '^Fuzz' ./internal/codec/
echo "check: OK"
