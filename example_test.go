package metachaos_test

import (
	"fmt"

	"metachaos"
)

// Example moves the top half of an HPF matrix onto a CHAOS irregular
// array inside one program — the smallest complete Meta-Chaos
// exchange.
func Example() {
	metachaos.RunSPMD(metachaos.Ideal(), 2, func(p *metachaos.Proc) {
		ctx := metachaos.NewCtx(p, p.Comm())

		src := metachaos.NewHPFArray(metachaos.Block2D(4, 4, 2), p.Rank())
		src.FillGlobal(func(c []int) float64 { return float64(10*c[0] + c[1]) })

		// CHAOS array of 8 points; rank 0 owns odd points, rank 1 even.
		var mine []int32
		for g := 1 - p.Rank(); g < 8; g += 2 {
			mine = append(mine, int32(g))
		}
		dst, err := metachaos.NewChaosArray(ctx, mine)
		if err != nil {
			panic(err)
		}

		sched, err := metachaos.ComputeSchedule(metachaos.SingleProgram(p.Comm()),
			&metachaos.Spec{Lib: metachaos.HPF, Obj: src,
				Set: metachaos.NewSetOfRegions(metachaos.NewSection([]int{0, 0}, []int{2, 4})), Ctx: ctx},
			&metachaos.Spec{Lib: metachaos.Chaos, Obj: dst,
				Set: metachaos.NewSetOfRegions(metachaos.IndexRegion{0, 1, 2, 3, 4, 5, 6, 7}), Ctx: ctx},
			metachaos.Cooperation)
		if err != nil {
			panic(err)
		}
		sched.Move(src, dst)

		if p.Rank() == 1 { // rank 1 owns the even points 0,2,4,6
			for k, g := range dst.Indices() {
				fmt.Printf("x[%d] = %.0f\n", g, dst.GetLocal(k))
			}
		}
	})
	// Output:
	// x[0] = 0
	// x[2] = 2
	// x[4] = 10
	// x[6] = 12
}

// ExampleSchedule_MoveReverse shows schedule symmetry: one schedule
// carries data in both directions.
func ExampleSchedule_MoveReverse() {
	metachaos.RunSPMD(metachaos.Ideal(), 1, func(p *metachaos.Proc) {
		ctx := metachaos.NewCtx(p, p.Comm())
		a := metachaos.NewHPFArray(metachaos.BlockVector(6, 1), 0)
		b := metachaos.NewHPFArray(metachaos.BlockVector(6, 1), 0)
		a.FillGlobal(func(c []int) float64 { return float64(c[0]) })

		sched, _ := metachaos.ComputeSchedule(metachaos.SingleProgram(p.Comm()),
			&metachaos.Spec{Lib: metachaos.HPF, Obj: a,
				Set: metachaos.NewSetOfRegions(metachaos.NewSection([]int{0}, []int{3})), Ctx: ctx},
			&metachaos.Spec{Lib: metachaos.HPF, Obj: b,
				Set: metachaos.NewSetOfRegions(metachaos.NewSection([]int{3}, []int{6})), Ctx: ctx},
			metachaos.Duplication)
		sched.Move(a, b)        // b[3:6] = a[0:3]
		b.Set([]int{4}, 99)     // change one element
		sched.MoveReverse(a, b) // a[0:3] = b[3:6]
		fmt.Println(a.Get([]int{0}), a.Get([]int{1}), a.Get([]int{2}))
	})
	// Output: 0 99 2
}

// ExampleRCB partitions points geometrically before a remap.
func ExampleRCB() {
	xs := []float64{0, 1, 10, 11}
	ys := []float64{0, 0, 0, 0}
	assign, _ := metachaos.RCB([][]float64{xs, ys}, 2)
	fmt.Println(assign)
	// Output: [0 0 1 1]
}
