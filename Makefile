GO ?= go

.PHONY: build test check chaos bench report

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Formatting + vet + race-detector test run; the gate to pass before
# sending changes.
check:
	sh scripts/check.sh

# Chaos harness: cross-library sweep + Figure 10 workload under
# deterministic fault injection (CHAOS_SEED / CHAOS_PROFILE).
chaos:
	sh scripts/chaos.sh

# Full benchmark suite with -benchmem, recorded as BENCH_<date>.json.
bench:
	sh scripts/bench.sh

report:
	$(GO) run ./cmd/mcreport > EXPERIMENTS.md
