GO ?= go

.PHONY: build test check chaos bench benchdiff coverage report

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Formatting + vet + race-detector test run; the gate to pass before
# sending changes.
check:
	sh scripts/check.sh

# Chaos harness: cross-library sweep + Figure 10 workload under
# deterministic fault injection (CHAOS_SEED / CHAOS_PROFILE).
chaos:
	sh scripts/chaos.sh

# Full benchmark suite with -benchmem, recorded as BENCH_<date>.json.
# Refuses to overwrite an existing snapshot; use `make bench BENCH=-f`
# (or scripts/bench.sh -f) to re-record.
bench:
	sh scripts/bench.sh $(BENCH)

# Perf-regression gate: gated benchmarks vs the newest committed
# BENCH_<date>.json (ns/op +10% or any allocs/op increase fails).
benchdiff:
	sh scripts/benchdiff.sh

# Coverage gate: full-suite statement coverage vs the recorded baseline.
coverage:
	sh scripts/coverage.sh

report:
	$(GO) run ./cmd/mcreport > EXPERIMENTS.md
