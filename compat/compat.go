// Package compat mirrors the original Meta-Chaos C interface from the
// paper (Section 4.2 and Figure 9): handle-based regions, sets of
// regions and schedules, and the MC_* call names.  It exists so the
// paper's example programs can be transcribed almost line for line;
// new code should use the root metachaos package directly.
//
// Names intentionally keep the 1997 underscore style (MC_ComputeSched,
// MC_DataMoveSend, ...) — a deliberate departure from Go naming for
// fidelity to the paper's API.
package compat

import (
	"fmt"

	"metachaos/internal/chaoslib"
	"metachaos/internal/core"
	"metachaos/internal/gidx"
	"metachaos/internal/mpsim"
)

// RegionID, SetOfRegionsID and ScheduleID are the opaque handles the
// 1997 API traded in.
type (
	RegionID       int
	SetOfRegionsID int
	ScheduleID     int
)

// Session holds one process's handle tables, standing in for the
// per-process global state of the C library.  Create one per simulated
// process.
type Session struct {
	p     *mpsim.Proc
	ctx   *core.Ctx
	regs  []core.Region
	sets  []*core.SetOfRegions
	sched []*core.Schedule
}

// NewSession initializes the Meta-Chaos library state for the calling
// process, bound to its program communicator.
func NewSession(p *mpsim.Proc) *Session {
	return &Session{p: p, ctx: core.NewCtx(p, p.Comm())}
}

// Ctx exposes the session's library context for constructing
// distributed objects.
func (s *Session) Ctx() *core.Ctx { return s.ctx }

// CreateRegion_HPF builds an HPF/Parti array-section region from
// Fortran-style inclusive bounds: the region covers left[d]..right[d]
// in every dimension d (1-based callers should subtract one, as the
// examples do).  Mirrors CreateRegion_HPF(rank, Rleft, Rright).
func (s *Session) CreateRegion_HPF(rank int, left, right []int) (RegionID, error) {
	if len(left) != rank || len(right) != rank {
		return 0, fmt.Errorf("compat: rank %d with %d/%d bounds", rank, len(left), len(right))
	}
	hi := make([]int, rank)
	for d := range right {
		hi[d] = right[d] + 1 // inclusive -> half-open
	}
	s.regs = append(s.regs, gidx.NewSection(left, hi))
	return RegionID(len(s.regs) - 1), nil
}

// CreateRegion_HPFStrided is the strided variant (lo:hi:step,
// inclusive hi).
func (s *Session) CreateRegion_HPFStrided(rank int, left, right, step []int) (RegionID, error) {
	if len(left) != rank || len(right) != rank || len(step) != rank {
		return 0, fmt.Errorf("compat: rank %d with %d/%d/%d bounds", rank, len(left), len(right), len(step))
	}
	hi := make([]int, rank)
	for d := range right {
		hi[d] = right[d] + 1
	}
	s.regs = append(s.regs, gidx.Section{
		Lo:   append([]int(nil), left...),
		Hi:   hi,
		Step: append([]int(nil), step...),
	})
	return RegionID(len(s.regs) - 1), nil
}

// CreateRegion_Chaos builds a CHAOS index-list region.
func (s *Session) CreateRegion_Chaos(indices []int32) RegionID {
	s.regs = append(s.regs, chaoslib.IndexRegion(append([]int32(nil), indices...)))
	return RegionID(len(s.regs) - 1)
}

// MC_NewSetOfRegion creates an empty SetOfRegions and returns its
// handle.
func (s *Session) MC_NewSetOfRegion() SetOfRegionsID {
	s.sets = append(s.sets, core.NewSetOfRegions())
	return SetOfRegionsID(len(s.sets) - 1)
}

// MC_AddRegion2Set appends a region to a set, preserving order (the
// set's linearization is the concatenation).
func (s *Session) MC_AddRegion2Set(r RegionID, set SetOfRegionsID) error {
	if int(r) >= len(s.regs) || int(set) >= len(s.sets) {
		return fmt.Errorf("compat: bad handle (region %d of %d, set %d of %d)",
			r, len(s.regs), set, len(s.sets))
	}
	s.sets[set].Add(s.regs[r])
	return nil
}

// MC_ComputeSched builds the schedule for an intra-program transfer
// (both sides in the calling program), naming each side's library by
// its registry name.  Collective.
func (s *Session) MC_ComputeSched(srcLib string, srcObj core.DistObject, srcSet SetOfRegionsID,
	dstLib string, dstObj core.DistObject, dstSet SetOfRegionsID) (ScheduleID, error) {
	sl, err := core.LookupLibrary(srcLib)
	if err != nil {
		return 0, err
	}
	dl, err := core.LookupLibrary(dstLib)
	if err != nil {
		return 0, err
	}
	sched, err := core.ComputeSchedule(core.SingleProgram(s.ctx.Comm),
		&core.Spec{Lib: sl, Obj: srcObj, Set: s.sets[srcSet], Ctx: s.ctx},
		&core.Spec{Lib: dl, Obj: dstObj, Set: s.sets[dstSet], Ctx: s.ctx},
		core.Cooperation)
	if err != nil {
		return 0, err
	}
	s.sched = append(s.sched, sched)
	return ScheduleID(len(s.sched) - 1), nil
}

// MC_ComputeSchedSend is the sending program's half of an
// inter-program schedule computation: this program owns the source
// data; peerProgram owns the destination.  Collective across both
// programs.  Mirrors the paper's source-side MC_ComputeSched(HPF, B,
// src_setOfRegionId).
func (s *Session) MC_ComputeSchedSend(lib string, obj core.DistObject, set SetOfRegionsID, peerProgram string) (ScheduleID, error) {
	l, err := core.LookupLibrary(lib)
	if err != nil {
		return 0, err
	}
	coupling, err := core.CoupleByName(s.p, s.p.Program(), peerProgram)
	if err != nil {
		return 0, err
	}
	sched, err := core.ComputeSchedule(coupling,
		&core.Spec{Lib: l, Obj: obj, Set: s.sets[set], Ctx: s.ctx}, nil, core.Cooperation)
	if err != nil {
		return 0, err
	}
	s.sched = append(s.sched, sched)
	return ScheduleID(len(s.sched) - 1), nil
}

// MC_ComputeSchedRecv is the receiving program's half.
func (s *Session) MC_ComputeSchedRecv(lib string, obj core.DistObject, set SetOfRegionsID, peerProgram string) (ScheduleID, error) {
	l, err := core.LookupLibrary(lib)
	if err != nil {
		return 0, err
	}
	coupling, err := core.CoupleByName(s.p, peerProgram, s.p.Program())
	if err != nil {
		return 0, err
	}
	sched, err := core.ComputeSchedule(coupling, nil,
		&core.Spec{Lib: l, Obj: obj, Set: s.sets[set], Ctx: s.ctx}, core.Cooperation)
	if err != nil {
		return 0, err
	}
	s.sched = append(s.sched, sched)
	return ScheduleID(len(s.sched) - 1), nil
}

// MC_DataMove performs an intra-program copy using the schedule.
func (s *Session) MC_DataMove(id ScheduleID, src, dst core.DistObject) error {
	sched, err := s.schedule(id)
	if err != nil {
		return err
	}
	sched.Move(src, dst)
	return nil
}

// MC_DataMoveSend sends this program's data through the schedule
// (inter-program).
func (s *Session) MC_DataMoveSend(id ScheduleID, obj core.DistObject) error {
	sched, err := s.schedule(id)
	if err != nil {
		return err
	}
	sched.MoveSend(obj)
	return nil
}

// MC_DataMoveRecv receives data into this program through the
// schedule (inter-program).
func (s *Session) MC_DataMoveRecv(id ScheduleID, obj core.DistObject) error {
	sched, err := s.schedule(id)
	if err != nil {
		return err
	}
	sched.MoveRecv(obj)
	return nil
}

// MC_SchedElemType returns the element type a schedule was built for.
// Data moves verify the objects they are handed carry exactly this
// type, so a caller coupling mixed-precision programs can inquire
// before moving.
func (s *Session) MC_SchedElemType(id ScheduleID) (core.ElemType, error) {
	sched, err := s.schedule(id)
	if err != nil {
		return core.ElemType{}, err
	}
	return sched.Elem(), nil
}

// MC_FreeSched releases a schedule handle.
func (s *Session) MC_FreeSched(id ScheduleID) error {
	if _, err := s.schedule(id); err != nil {
		return err
	}
	s.sched[id] = nil
	return nil
}

func (s *Session) schedule(id ScheduleID) (*core.Schedule, error) {
	if int(id) >= len(s.sched) || s.sched[id] == nil {
		return nil, fmt.Errorf("compat: bad or freed schedule handle %d", id)
	}
	return s.sched[id], nil
}
