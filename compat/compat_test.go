package compat

import (
	"strings"
	"testing"

	"metachaos/internal/chaoslib"
	"metachaos/internal/core"
	"metachaos/internal/distarray"
	"metachaos/internal/gidx"
	"metachaos/internal/hpfrt"
	"metachaos/internal/mpsim"
)

func TestCreateRegionHPFInclusiveBounds(t *testing.T) {
	mpsim.RunSPMD(mpsim.Ideal(), 1, func(p *mpsim.Proc) {
		mc := NewSession(p)
		// Fortran a(2:5, 1:3) -> 4x3 = 12 elements.
		id, err := mc.CreateRegion_HPF(2, []int{2, 1}, []int{5, 3})
		if err != nil {
			t.Fatal(err)
		}
		if got := mc.regs[id].Size(); got != 12 {
			t.Errorf("region size %d, want 12", got)
		}
		if _, err := mc.CreateRegion_HPF(2, []int{1}, []int{5, 3}); err == nil {
			t.Error("rank mismatch accepted")
		}
	})
}

func TestCreateRegionHPFStrided(t *testing.T) {
	mpsim.RunSPMD(mpsim.Ideal(), 1, func(p *mpsim.Proc) {
		mc := NewSession(p)
		// a(0:8:2) inclusive -> 0,2,4,6,8 = 5 elements.
		id, err := mc.CreateRegion_HPFStrided(1, []int{0}, []int{8}, []int{2})
		if err != nil {
			t.Fatal(err)
		}
		if got := mc.regs[id].Size(); got != 5 {
			t.Errorf("region size %d, want 5", got)
		}
	})
}

func TestSetAssemblyAndIntraProgramMove(t *testing.T) {
	const n, nprocs = 12, 2
	mpsim.RunSPMD(mpsim.Ideal(), nprocs, func(p *mpsim.Proc) {
		mc := NewSession(p)
		src := hpfrt.NewArray(hpfrt.BlockVector(n, nprocs), p.Rank())
		src.FillGlobal(func(c []int) float64 { return float64(c[0] + 1) })
		var mine []int32
		for g := p.Rank(); g < n; g += nprocs {
			mine = append(mine, int32(g))
		}
		dst, err := chaoslib.NewArray(mc.Ctx(), mine)
		if err != nil {
			t.Fatal(err)
		}

		// Two source regions concatenated against one destination list.
		r1, _ := mc.CreateRegion_HPF(1, []int{0}, []int{5})
		r2, _ := mc.CreateRegion_HPF(1, []int{6}, []int{11})
		srcSet := mc.MC_NewSetOfRegion()
		if err := mc.MC_AddRegion2Set(r1, srcSet); err != nil {
			t.Fatal(err)
		}
		if err := mc.MC_AddRegion2Set(r2, srcSet); err != nil {
			t.Fatal(err)
		}
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(n - 1 - i) // reversed
		}
		r3 := mc.CreateRegion_Chaos(idx)
		dstSet := mc.MC_NewSetOfRegion()
		if err := mc.MC_AddRegion2Set(r3, dstSet); err != nil {
			t.Fatal(err)
		}

		sched, err := mc.MC_ComputeSched("hpf", src, srcSet, "chaos", dst, dstSet)
		if err != nil {
			t.Fatal(err)
		}
		if et, err := mc.MC_SchedElemType(sched); err != nil || et != core.Float64 {
			t.Errorf("MC_SchedElemType = %v, %v", et, err)
		}
		if err := mc.MC_DataMove(sched, src, dst); err != nil {
			t.Fatal(err)
		}
		// dst element (n-1-k) holds src element k -> dst[g] = n-g.
		for k, g := range dst.Indices() {
			if got := dst.GetLocal(k); got != float64(n-int(g)) {
				t.Errorf("dst[%d]=%g want %d", g, got, n-int(g))
			}
		}

		if err := mc.MC_FreeSched(sched); err != nil {
			t.Fatal(err)
		}
		if err := mc.MC_DataMove(sched, src, dst); err == nil {
			t.Error("freed schedule usable")
		}
	})
}

func TestBadHandles(t *testing.T) {
	mpsim.RunSPMD(mpsim.Ideal(), 1, func(p *mpsim.Proc) {
		mc := NewSession(p)
		if err := mc.MC_AddRegion2Set(RegionID(3), SetOfRegionsID(0)); err == nil {
			t.Error("bad region handle accepted")
		}
		if err := mc.MC_DataMoveSend(ScheduleID(9), nil); err == nil {
			t.Error("bad schedule handle accepted")
		}
		if _, err := mc.MC_ComputeSchedSend("no-such-lib", nil, mc.MC_NewSetOfRegion(), "peer"); err == nil ||
			!strings.Contains(err.Error(), "no library") {
			t.Errorf("unknown library: %v", err)
		}
	})
}

func TestInterProgramCompat(t *testing.T) {
	const n = 10
	got := make([]float64, n)
	mpsim.Run(mpsim.Config{
		Machine: mpsim.Ideal(),
		Programs: []mpsim.ProgramSpec{
			{Name: "giver", Procs: 2, Body: func(p *mpsim.Proc) {
				mc := NewSession(p)
				a := hpfrt.NewArray(hpfrt.BlockVector(n, 2), p.Rank())
				a.FillGlobal(func(c []int) float64 { return float64(c[0] * 4) })
				r, _ := mc.CreateRegion_HPF(1, []int{0}, []int{n - 1})
				set := mc.MC_NewSetOfRegion()
				mc.MC_AddRegion2Set(r, set)
				id, err := mc.MC_ComputeSchedSend("hpf", a, set, "taker")
				if err != nil {
					t.Errorf("%v", err)
					return
				}
				if err := mc.MC_DataMoveSend(id, a); err != nil {
					t.Errorf("%v", err)
				}
			}},
			{Name: "taker", Procs: 2, Body: func(p *mpsim.Proc) {
				mc := NewSession(p)
				d, _ := distarray.NewDist(gidx.Shape{n}, []int{2}, []distarray.Kind{distarray.Cyclic})
				a := hpfrt.NewArray(d, p.Rank())
				r, _ := mc.CreateRegion_HPF(1, []int{0}, []int{n - 1})
				set := mc.MC_NewSetOfRegion()
				mc.MC_AddRegion2Set(r, set)
				id, err := mc.MC_ComputeSchedRecv("hpf", a, set, "giver")
				if err != nil {
					t.Errorf("%v", err)
					return
				}
				if err := mc.MC_DataMoveRecv(id, a); err != nil {
					t.Errorf("%v", err)
					return
				}
				for g := 0; g < n; g++ {
					if d.OwnerOf([]int{g}) == p.Rank() {
						got[g] = a.Get([]int{g})
					}
				}
			}},
		},
	})
	for g := range got {
		if got[g] != float64(g*4) {
			t.Errorf("taker[%d]=%g want %d", g, got[g], g*4)
		}
	}
}

func TestComputeSchedErrors(t *testing.T) {
	mpsim.RunSPMD(mpsim.Ideal(), 1, func(p *mpsim.Proc) {
		mc := NewSession(p)
		obj := hpfrt.NewArray(hpfrt.BlockVector(4, 1), 0)
		set := mc.MC_NewSetOfRegion()
		r, _ := mc.CreateRegion_HPF(1, []int{0}, []int{3})
		mc.MC_AddRegion2Set(r, set)
		if _, err := mc.MC_ComputeSched("nope", obj, set, "hpf", obj, set); err == nil {
			t.Error("unknown src library accepted")
		}
		if _, err := mc.MC_ComputeSched("hpf", obj, set, "nope", obj, set); err == nil {
			t.Error("unknown dst library accepted")
		}
		if _, err := mc.MC_ComputeSchedRecv("nope", obj, set, "peer"); err == nil {
			t.Error("unknown recv library accepted")
		}
		if err := mc.MC_FreeSched(ScheduleID(5)); err == nil {
			t.Error("freeing unknown schedule accepted")
		}
	})
}
