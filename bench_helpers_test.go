package metachaos_test

import (
	"metachaos"
	"metachaos/internal/mbparti"
)

// buildGhost keeps the benchmark file free of internal plumbing.
func buildGhost(p *metachaos.Proc, a *metachaos.MBPartiArray) (*mbparti.GhostSchedule, error) {
	return mbparti.BuildGhostSchedule(p, p.Comm(), a)
}
