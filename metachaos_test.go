package metachaos_test

import (
	"testing"

	"metachaos"
)

// These tests exercise the exported API exactly as a downstream user
// would, without touching internal packages.

func TestPublicAPICrossLibraryCopy(t *testing.T) {
	const n, nprocs = 40, 4
	got := make([]float64, n)
	metachaos.RunSPMD(metachaos.Ideal(), nprocs, func(p *metachaos.Proc) {
		ctx := metachaos.NewCtx(p, p.Comm())
		src := metachaos.NewHPFArray(metachaos.BlockVector(n, nprocs), p.Rank())
		src.FillGlobal(func(c []int) float64 { return float64(c[0] * 7) })

		var mine []int32
		for g := p.Rank(); g < n; g += nprocs {
			mine = append(mine, int32(g))
		}
		dst, err := metachaos.NewChaosArray(ctx, mine)
		if err != nil {
			t.Errorf("NewChaosArray: %v", err)
			return
		}
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(i)
		}
		sched, err := metachaos.ComputeSchedule(metachaos.SingleProgram(p.Comm()),
			&metachaos.Spec{Lib: metachaos.HPF, Obj: src,
				Set: metachaos.NewSetOfRegions(metachaos.FullSection(metachaos.Shape{n})), Ctx: ctx},
			&metachaos.Spec{Lib: metachaos.Chaos, Obj: dst,
				Set: metachaos.NewSetOfRegions(metachaos.IndexRegion(idx)), Ctx: ctx},
			metachaos.Cooperation)
		if err != nil {
			t.Errorf("ComputeSchedule: %v", err)
			return
		}
		sched.Move(src, dst)
		for k, g := range dst.Indices() {
			got[g] = dst.GetLocal(k)
		}
	})
	for i := range got {
		if got[i] != float64(i*7) {
			t.Fatalf("element %d = %g, want %d", i, got[i], i*7)
		}
	}
}

func TestPublicAPIMachineProfiles(t *testing.T) {
	for _, m := range []*metachaos.Machine{metachaos.SP2(), metachaos.AlphaFarmATM(), metachaos.Ideal()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestPublicAPIRegistry(t *testing.T) {
	for _, name := range []string{"hpf", "chaos", "mbparti", "pcxx"} {
		lib, err := metachaos.LookupLibrary(name)
		if err != nil {
			t.Errorf("LookupLibrary(%q): %v", name, err)
			continue
		}
		if lib.Name() != name {
			t.Errorf("library %q reports name %q", name, lib.Name())
		}
	}
}

func TestPublicAPITwoProgramsWithStats(t *testing.T) {
	const n = 16
	stats := metachaos.Run(metachaos.Config{
		Machine: metachaos.SP2(),
		Programs: []metachaos.ProgramSpec{
			{Name: "left", Procs: 2, Body: func(p *metachaos.Proc) {
				ctx := metachaos.NewCtx(p, p.Comm())
				a := metachaos.NewHPFArray(metachaos.BlockVector(n, 2), p.Rank())
				a.FillGlobal(func(c []int) float64 { return float64(c[0]) })
				coupling, err := metachaos.CoupleByName(p, "left", "right")
				if err != nil {
					t.Errorf("couple: %v", err)
					return
				}
				sched, err := metachaos.ComputeSchedule(coupling,
					&metachaos.Spec{Lib: metachaos.HPF, Obj: a,
						Set: metachaos.NewSetOfRegions(metachaos.FullSection(metachaos.Shape{n})), Ctx: ctx},
					nil, metachaos.Duplication)
				if err != nil {
					t.Errorf("src schedule: %v", err)
					return
				}
				sched.MoveSend(a)
			}},
			{Name: "right", Procs: 2, Body: func(p *metachaos.Proc) {
				ctx := metachaos.NewCtx(p, p.Comm())
				c, err := metachaos.NewPCXXCollection(n, 2, 1, p.Rank())
				if err != nil {
					t.Errorf("collection: %v", err)
					return
				}
				coupling, err := metachaos.CoupleByName(p, "left", "right")
				if err != nil {
					t.Errorf("couple: %v", err)
					return
				}
				sched, err := metachaos.ComputeSchedule(coupling, nil,
					&metachaos.Spec{Lib: metachaos.PCXX, Obj: c,
						Set: metachaos.NewSetOfRegions(metachaos.RangeRegion{Lo: 0, Hi: n, Step: 1}), Ctx: ctx},
					metachaos.Duplication)
				if err != nil {
					t.Errorf("dst schedule: %v", err)
					return
				}
				sched.MoveRecv(c)
				c.ForEachOwned(func(i int, elem []float64) {
					if elem[0] != float64(i) {
						t.Errorf("element %d = %g", i, elem[0])
					}
				})
			}},
		},
	})
	if stats.TotalMsgs() == 0 || stats.MakespanSeconds <= 0 {
		t.Errorf("stats empty: %d msgs, %.6fs", stats.TotalMsgs(), stats.MakespanSeconds)
	}
}

func TestPublicAPIScheduleIntrospection(t *testing.T) {
	metachaos.RunSPMD(metachaos.Ideal(), 2, func(p *metachaos.Proc) {
		ctx := metachaos.NewCtx(p, p.Comm())
		src := metachaos.NewHPFArray(metachaos.BlockVector(10, 2), p.Rank())
		dst := metachaos.NewHPFArray(metachaos.BlockVector(10, 2), p.Rank())
		sched, err := metachaos.ComputeSchedule(metachaos.SingleProgram(p.Comm()),
			&metachaos.Spec{Lib: metachaos.HPF, Obj: src,
				Set: metachaos.NewSetOfRegions(metachaos.NewSection([]int{0}, []int{5})), Ctx: ctx},
			&metachaos.Spec{Lib: metachaos.HPF, Obj: dst,
				Set: metachaos.NewSetOfRegions(metachaos.NewSection([]int{5}, []int{10})), Ctx: ctx},
			metachaos.Cooperation)
		if err != nil {
			t.Errorf("%v", err)
			return
		}
		if sched.Elems() != 5 || sched.ElemWords() != 1 {
			t.Errorf("Elems=%d ElemWords=%d", sched.Elems(), sched.ElemWords())
		}
		// Rank 0 owns sources 0-4, rank 1 owns destinations 5-9: one
		// lane each way.
		mine := sched.SendCount() + sched.RecvCount() + sched.LocalCount()
		total := int(p.Comm().AllreduceInt64(metachaos.OpSum, int64(mine)))
		if total != 10 { // 5 sends counted on rank 0 + 5 recvs on rank 1
			t.Errorf("total lane entries %d, want 10", total)
		}
	})
}
